"""Lock-discipline analysis: order graph, blocking-under-lock, guarded-by.

Per function, a walker tracks the set of held locks through ``with``
statements and records:

* every acquisition site ``(path, line) -> label`` (the table the
  runtime witness is cross-checked against),
* lock-order edges ``held -> acquired``, both direct (nested ``with``)
  and interprocedural (a call made under a lock reaches a function
  that may acquire),
* blocking operations (fsync, socket I/O, sleep, subprocess, pool
  submits) reached while a lock is held,
* writes to ``# guarded-by:`` attributes outside their lock.

Call resolution is deliberately tiered: typed resolution (traced
attribute/constructor/annotation types, ``# lint: returns`` hints)
always wins; a name-based fallback fires only for names with at most
``_NAME_CAP`` definitions repo-wide and never for generic stdlib-ish
names.  Lock-ORDER edges over-approximate on purpose -- a spurious
static edge costs a stale-annotation warning, a missing one is a
witness failure -- while every blocking finding is meant to be triaged
by a human (fixed or annotated with a reasoned pragma).

The memo lock is an ``RLock``; self-edges on reentrant locks are kept
in the edge set (two *distinct* stores can legally nest, and the
witness may observe that) but excluded from deadlock-cycle detection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.findings import Finding
from repro.lint.model import ClassInfo, FuncInfo, Index, annotation_names

#: method names too generic for name-based fallback resolution; typed
#: resolution (including `# lint: returns` hints) bypasses this list.
_SKIP_NAMES = frozenset(
    """close start stop run join get put items keys values read write
    send append pop update clear copy result wait set flush encode
    decode add remove submit format count index sort split strip name
    fileno shutdown accept connect serve_forever info debug warning
    error load""".split()
)
_NAME_CAP = 4

_MUTATORS = frozenset(
    """append extend insert remove pop popleft clear update setdefault
    add discard appendleft popitem""".split()
)

#: module.attr calls that block.
_BLOCKING_QUALIFIED = {
    ("os", "fsync"),
    ("os", "fdatasync"),
    ("time", "sleep"),
    ("select", "select"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "Popen"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
}
#: attribute calls that block on any receiver.
_BLOCKING_ATTRS = frozenset(
    "sendall recv recv_into getresponse urlopen serve_forever sendto submit".split()
)
#: attribute calls that block only on receivers whose name carries a token.
_BLOCKING_ATTRS_BY_RECV = {
    "map": ("pool", "executor", "threads", "procs", "workers"),
    "wait": ("event",),
    "request": ("conn",),
    "connect": ("conn", "sock"),
    "accept": ("sock", "listener", "server"),
}
_BLOCKING_NAMES = frozenset({"urlopen", "create_connection"})

_UNRESOLVED = "?"


def _is_lockish_name(name: str) -> bool:
    return name.lower().endswith("lock")


def _flatten_targets(target):
    if isinstance(target, (ast.Tuple, ast.List)):
        out = []
        for elt in target.elts:
            out.extend(_flatten_targets(elt))
        return out
    return [target]


@dataclass
class CallSite:
    line: int
    held: tuple
    callees: list


@dataclass
class FuncFacts:
    fn: FuncInfo
    #: (line, label) for every recognized lock acquisition (label may be "?")
    acquisitions: list = field(default_factory=list)
    direct_edges: list = field(default_factory=list)  # (held, acq, line)
    call_sites: list = field(default_factory=list)
    direct_blocking: list = field(default_factory=list)  # (line, desc, held)
    guarded_findings: list = field(default_factory=list)
    direct_acquires: set = field(default_factory=set)
    direct_block_descs: set = field(default_factory=set)


class LockAnalysis:
    """Whole-tree lock analysis over a collected :class:`Index`."""

    def __init__(self, index: Index):
        self.index = index
        self.facts: dict[str, FuncFacts] = {}  # keyed by modname:qualname
        self.reentrant_labels: set[str] = set()
        self.site_table: dict[tuple, str] = {}  # (path, line) -> label
        self.edges: dict[tuple, tuple] = {}  # (a, b) -> witness (path, line, ctx)
        self.findings: list[Finding] = []
        self._find_reentrant()
        self._enrich_attr_types()

    def _enrich_attr_types(self) -> None:
        """Second collection phase, with the whole index available:
        constructor assignments like ``self.store = session.store``
        type through *other* modules' classes, which the per-module
        collector cannot see.  Two passes settle the chains this
        codebase has."""
        for _ in range(2):
            for mod in self.index.modules.values():
                for cls in mod.classes.values():
                    for fn in cls.methods.values():
                        local_types = self._local_types(fn)
                        for sub in ast.walk(fn.node):
                            if not isinstance(sub, ast.Assign):
                                continue
                            for target in sub.targets:
                                if not (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    continue
                                got = self._expr_types(
                                    sub.value, fn, local_types
                                )
                                if got:
                                    cls.attr_types.setdefault(
                                        target.attr, set()
                                    ).update(got)

    # -- reentrancy ------------------------------------------------------------

    def _find_reentrant(self) -> None:
        for mod in self.index.modules.values():
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                fnode = node.value.func
                attr = fnode.attr if isinstance(fnode, ast.Attribute) else (
                    fnode.id if isinstance(fnode, ast.Name) else None
                )
                if attr != "RLock":
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        for cls in mod.classes.values():
                            if target.attr in cls.lock_attrs:
                                self.reentrant_labels.add(
                                    cls.lock_label(target.attr)
                                )
                    elif isinstance(target, ast.Name):
                        if target.id in mod.module_locks:
                            self.reentrant_labels.add(
                                mod.lock_label(target.id)
                            )

    # -- label resolution ------------------------------------------------------

    def _enclosing_class(self, fn: FuncInfo) -> Optional[ClassInfo]:
        if fn.classname is None:
            return None
        return fn.module.classes.get(fn.classname)

    def _class_lock_label(self, cls: ClassInfo, attr: str) -> Optional[str]:
        for h in self.index.hierarchy(cls):
            if attr in h.lock_attrs:
                return h.lock_label(attr)
        return None

    def _attr_lock_label(
        self, attr: str, recv_types: set, recv_name: str = ""
    ) -> Optional[str]:
        """Label for ``<recv>.<attr>`` where attr names a lock."""
        for t in sorted(recv_types):
            for cls in self.index.classes_named(t):
                label = self._class_lock_label(cls, attr)
                if label:
                    return label
        owners = self.index.lock_attr_owners.get(attr, [])
        if len(owners) == 1:
            return owners[0].lock_label(attr)
        if recv_name:
            token = recv_name.lower().lstrip("_").split("_")[-1]
            for cls in owners:
                if token and token in cls.name.lower():
                    return cls.lock_label(attr)
        return None

    def resolve_raw_lock(self, raw: str, fn: FuncInfo) -> str:
        """A lock name from a pragma (`guarded-by:` / `holds-lock:`)."""
        if "." in raw:
            return raw
        cls = self._enclosing_class(fn)
        if cls is not None:
            label = self._class_lock_label(cls, raw)
            if label:
                return label
        if raw in fn.module.module_locks:
            return fn.module.lock_label(raw)
        owners = self.index.lock_attr_owners.get(raw, [])
        if len(owners) == 1:
            return owners[0].lock_label(raw)
        return raw

    # -- expression typing -----------------------------------------------------

    def _expr_types(self, expr, fn: FuncInfo, local_types: dict) -> set:
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and fn.classname:
                return {fn.classname}
            return set(local_types.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            base_types = self._expr_types(expr.value, fn, local_types)
            out = set()
            for t in base_types:
                for cls in self.index.classes_named(t):
                    for h in self.index.hierarchy(cls):
                        out.update(h.attr_types.get(expr.attr, ()))
            return out
        if isinstance(expr, ast.Call):
            out = set()
            for callee in self._resolve_call(expr, fn, local_types, typed_only=True):
                out.update(callee.returns)
                out.update(callee.return_types)
            fnode = expr.func
            name = fnode.id if isinstance(fnode, ast.Name) else None
            if name and self.index.classes_named(name):
                out.add(name)
            if name == "cls" and fn.classname:  # cls(...) in a classmethod
                out.add(fn.classname)
            return out
        if isinstance(expr, ast.Subscript):
            # elements of self._shards etc. -- element types are stored
            # directly as the attr's type by the collector
            return self._expr_types(expr.value, fn, local_types)
        if isinstance(expr, ast.IfExp):
            return self._expr_types(expr.body, fn, local_types) | self._expr_types(
                expr.orelse, fn, local_types
            )
        return set()

    def _local_types(self, fn: FuncInfo) -> dict:
        """varname -> set of class names, from annotations and assignments."""
        types: dict[str, set] = {}
        node = fn.node
        args = node.args
        for arg in list(args.args) + list(args.kwonlyargs) + (
            [args.vararg] if args.vararg else []
        ):
            anns = annotation_names(arg.annotation)
            if anns:
                types[arg.arg] = set(anns)
        # two passes so `a = self.x; b = a.y` chains resolve
        for _ in range(2):
            for sub in ast.walk(node):
                target = None
                value = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                    anns = annotation_names(sub.annotation)
                    if isinstance(target, ast.Name) and anns:
                        types.setdefault(target.id, set()).update(anns)
                elif isinstance(sub, ast.For):
                    target, value = sub.target, sub.iter
                if not isinstance(target, ast.Name) or value is None:
                    continue
                got = self._expr_types(value, fn, types)
                if got:
                    types.setdefault(target.id, set()).update(got)
        return types

    def _local_lock_vars(self, fn: FuncInfo, local_types: dict) -> dict:
        """varname -> lock label, traced through local assignments."""
        out: dict[str, str] = {}
        for sub in ast.walk(fn.node):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            label = self._lock_value_label(sub.value, fn, local_types)
            if label:
                out[target.id] = label
        return out

    def _lock_value_label(self, value, fn: FuncInfo, local_types: dict):
        """Label if ``value`` evaluates to a known lock object."""
        if isinstance(value, ast.BoolOp):
            for sub in value.values:
                label = self._lock_value_label(sub, fn, local_types)
                if label:
                    return label
            return None
        if isinstance(value, ast.IfExp):
            return self._lock_value_label(
                value.body, fn, local_types
            ) or self._lock_value_label(value.orelse, fn, local_types)
        if isinstance(value, ast.Attribute) and _is_lockish_name(value.attr):
            return self._resolve_lock_attr(value, fn, local_types)
        if isinstance(value, ast.Call):
            fnode = value.func
            if isinstance(fnode, ast.Name) and fnode.id == "getattr":
                if len(value.args) >= 2 and isinstance(value.args[1], ast.Constant):
                    attr = value.args[1].value
                    if isinstance(attr, str) and _is_lockish_name(attr):
                        recv = value.args[0]
                        recv_types = self._expr_types(recv, fn, local_types)
                        recv_name = recv.id if isinstance(recv, ast.Name) else ""
                        return self._attr_lock_label(attr, recv_types, recv_name)
            for callee in self._resolve_call(value, fn, local_types, typed_only=True):
                if callee.returns_lock:
                    return callee.returns_lock
        return None

    def _resolve_lock_attr(self, expr: ast.Attribute, fn, local_types):
        attr = expr.attr
        base = expr.value
        if isinstance(base, ast.Name) and base.id == "self":
            cls = self._enclosing_class(fn)
            if cls is not None:
                label = self._class_lock_label(cls, attr)
                if label:
                    return label
                return cls.lock_label(attr)
            return None
        recv_types = self._expr_types(base, fn, local_types)
        recv_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        return self._attr_lock_label(attr, recv_types, recv_name)

    def _lock_expr_label(self, expr, fn: FuncInfo, local_types, lock_vars):
        """(label | "?" | None): what a with-item acquires, if a lock."""
        if isinstance(expr, ast.Attribute):
            # Resolution first: a known lock attribute labels no matter
            # what it is called; the lockish-name heuristic only decides
            # whether an *unresolvable* attr is worth an "?" finding.
            label = self._resolve_lock_attr(expr, fn, local_types)
            if label:
                return label
            return _UNRESOLVED if _is_lockish_name(expr.attr) else None
        if isinstance(expr, ast.Name):
            if expr.id in lock_vars:
                return lock_vars[expr.id]
            if expr.id in fn.module.module_locks:
                return fn.module.lock_label(expr.id)
            if _is_lockish_name(expr.id):
                return _UNRESOLVED
            return None
        if isinstance(expr, ast.Call):
            label = self._lock_value_label(expr, fn, local_types)
            if label:
                return label
            fnode = expr.func
            name = fnode.id if isinstance(fnode, ast.Name) else (
                fnode.attr if isinstance(fnode, ast.Attribute) else ""
            )
            if "lock" in name.lower() and name != "nullcontext":
                return _UNRESOLVED
            return None
        return None

    # -- call resolution -------------------------------------------------------

    def _method_candidates(self, cls: ClassInfo, meth: str) -> list:
        out = []
        for h in self.index.hierarchy(cls):
            if meth in h.methods:
                out.append(h.methods[meth])
        return out

    def _resolve_call(
        self, call: ast.Call, fn: FuncInfo, local_types: dict, typed_only=False
    ) -> list:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            mod = fn.module
            if name in mod.functions:
                return [mod.functions[name]]
            src = mod.imported_names.get(name)
            if src and src in self.index.modules:
                m = self.index.modules[src]
                if name in m.functions:
                    return [m.functions[name]]
            cands = [
                c
                for c in self.index.funcs_by_name.get(name, [])
                if c.classname is None
            ]
            if len(cands) == 1:
                return cands
            return []
        if not isinstance(func, ast.Attribute):
            return []
        meth = func.attr
        base = func.value
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
        ):
            cls = self._enclosing_class(fn)
            out = []
            if cls is not None:
                for base_name in cls.bases:
                    for anc in self.index.classes_named(base_name):
                        out.extend(self._method_candidates(anc, meth))
            return out
        recv_types = self._expr_types(base, fn, local_types)
        if not recv_types and isinstance(base, ast.Name):
            # classmethod/staticmethod reference: Session.load(...)
            if self.index.classes_named(base.id):
                recv_types = {base.id}
        if recv_types:
            out = []
            for t in sorted(recv_types):
                for cls in self.index.classes_named(t):
                    out.extend(self._method_candidates(cls, meth))
            if out:
                seen, uniq = set(), []
                for c in out:
                    key = (c.module.modname, c.qualname)
                    if key not in seen:
                        seen.add(key)
                        uniq.append(c)
                return uniq
        if isinstance(base, ast.Name):
            src = fn.module.imported_names.get(base.id)
            if src and src in self.index.modules:
                m = self.index.modules[src]
                if meth in m.functions:
                    return [m.functions[meth]]
        if typed_only or meth in _SKIP_NAMES:
            return []
        cands = self.index.funcs_by_name.get(meth, [])
        if 1 <= len(cands) <= _NAME_CAP:
            return list(cands)
        return []

    # -- blocking detection ----------------------------------------------------

    def _blocking_desc(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                return f"{func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name) and (base.id, attr) in _BLOCKING_QUALIFIED:
            return f"{base.id}.{attr}()"
        if attr in _BLOCKING_ATTRS:
            return f".{attr}()"
        tokens = _BLOCKING_ATTRS_BY_RECV.get(attr)
        if tokens:
            recv = ""
            if isinstance(base, ast.Name):
                recv = base.id
            elif isinstance(base, ast.Attribute):
                recv = base.attr
            recv = recv.lower()
            if any(t in recv for t in tokens):
                return f"{recv}.{attr}()"
        return None

    # -- the per-function walk -------------------------------------------------

    def analyze_function(self, fn: FuncInfo) -> FuncFacts:
        facts = FuncFacts(fn=fn)
        local_types = self._local_types(fn)
        lock_vars = self._local_lock_vars(fn, local_types)
        held0 = [self.resolve_raw_lock(raw, fn) for raw in fn.holds]
        globals_declared: set[str] = set()
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Global):
                globals_declared.update(sub.names)
        exempt_writes = fn.name in ("__init__", "__new__")

        def record_acquire(label: str, line: int, held: list) -> None:
            facts.acquisitions.append((line, label))
            if label != _UNRESOLVED:
                facts.direct_acquires.add(label)
                for h in held:
                    if h != _UNRESOLVED:
                        facts.direct_edges.append((h, label, line))

        def check_write(target, line: int, held: list) -> None:
            if exempt_writes:
                return
            required = None
            what = None
            node = target
            if isinstance(node, ast.Subscript):
                node = node.value
            if isinstance(node, ast.Attribute):
                attr = node.attr
                recv = node.value
                owner = None
                if isinstance(recv, ast.Name) and recv.id == "self":
                    cls = self._enclosing_class(fn)
                    if cls is not None:
                        for h in self.index.hierarchy(cls):
                            if attr in h.guarded:
                                owner = h
                                break
                else:
                    recv_types = self._expr_types(recv, fn, local_types)
                    for t in sorted(recv_types):
                        for cls in self.index.classes_named(t):
                            for h in self.index.hierarchy(cls):
                                if attr in h.guarded:
                                    owner = h
                                    break
                            if owner:
                                break
                        if owner:
                            break
                    if owner is None and not recv_types:
                        owners = self.index.guarded_attr_owners.get(attr, [])
                        if len(owners) == 1:
                            owner = owners[0]
                if owner is not None:
                    raw = owner.guarded[attr]
                    ctx_fn = owner.methods.get("__init__") or fn
                    required = self.resolve_raw_lock(raw, ctx_fn)
                    what = f"{owner.name}.{attr}"
            elif isinstance(node, ast.Name):
                name = node.id
                mod = fn.module
                if name in mod.module_guards and name in globals_declared:
                    required = self.resolve_raw_lock(mod.module_guards[name], fn)
                    what = f"{mod.basename}.{name}"
            if required is not None and required not in held:
                facts.guarded_findings.append(
                    Finding(
                        rule="guarded-by",
                        path=fn.module.path,
                        line=line,
                        message=f"write to {what} without {required} held",
                        context=fn.qualname,
                    )
                )

        def note_call(call: ast.Call, held: list) -> None:
            desc = self._blocking_desc(call)
            if desc is not None:
                facts.direct_block_descs.add(desc)
                if held:
                    facts.direct_blocking.append((call.lineno, desc, tuple(held)))
            callees = self._resolve_call(call, fn, local_types)
            if callees:
                facts.call_sites.append(
                    CallSite(line=call.lineno, held=tuple(held), callees=callees)
                )
            fnode = call.func
            if isinstance(fnode, ast.Attribute) and fnode.attr in _MUTATORS:
                check_write(fnode.value, call.lineno, held)

        def visit(node, held: list) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested defs (executor job closures): the body runs on
                # behalf of this function eventually, with no outer lock
                # inherited
                for stmt in node.body:
                    visit(stmt, [])
                return
            if isinstance(node, ast.With):
                pushed = 0
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Call):
                            note_call(sub, held)
                    label = self._lock_expr_label(
                        item.context_expr, fn, local_types, lock_vars
                    )
                    if label is not None:
                        record_acquire(label, item.context_expr.lineno, held)
                        held.append(label)
                        pushed += 1
                for stmt in node.body:
                    visit(stmt, held)
                for _ in range(pushed):
                    held.pop()
                return
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for t in _flatten_targets(target):
                        check_write(t, node.lineno, held)
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    check_write(t, node.lineno, held)
            elif isinstance(node, ast.Call):
                note_call(node, held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.node.body:
            visit(stmt, list(held0))
        return facts

    # -- whole-tree driver -----------------------------------------------------

    def run(self) -> None:
        all_funcs = []
        for modname in sorted(self.index.modules):
            mod = self.index.modules[modname]
            for fn in mod.all_funcs():
                key = f"{mod.modname}:{fn.qualname}"
                facts = self.analyze_function(fn)
                self.facts[key] = facts
                all_funcs.append((key, facts))

        may_acquire = {k: set(f.direct_acquires) for k, f in all_funcs}
        blocked_frozen = {
            k for k, f in all_funcs if f.fn.allows_rule("lock-blocking")
        }
        may_block = {
            k: (set() if k in blocked_frozen else set(f.direct_block_descs))
            for k, f in all_funcs
        }
        key_of = {}
        for k, f in all_funcs:
            key_of[(f.fn.module.modname, f.fn.qualname)] = k
        changed = True
        while changed:
            changed = False
            for k, f in all_funcs:
                for site in f.call_sites:
                    for callee in site.callees:
                        ck = key_of.get((callee.module.modname, callee.qualname))
                        if ck is None or ck == k:
                            continue
                        if not may_acquire[ck] <= may_acquire[k]:
                            may_acquire[k] |= may_acquire[ck]
                            changed = True
                        if (
                            k not in blocked_frozen
                            and not may_block[ck] <= may_block[k]
                        ):
                            may_block[k] |= may_block[ck]
                            changed = True

        for k, f in all_funcs:
            path = f.fn.module.path
            ctx = f.fn.qualname
            for line, label in f.acquisitions:
                if label == _UNRESOLVED:
                    self.findings.append(
                        Finding(
                            rule="lock-unresolved",
                            path=path,
                            line=line,
                            message="cannot name the lock acquired here",
                            context=ctx,
                        )
                    )
                else:
                    self.site_table[(path, line)] = label
            for a, b, line in f.direct_edges:
                self.edges.setdefault((a, b), (path, line, ctx))
            seen_blocking = set()
            for line, desc, held in f.direct_blocking:
                if (line, desc) in seen_blocking:
                    continue
                seen_blocking.add((line, desc))
                self.findings.append(
                    Finding(
                        rule="lock-blocking",
                        path=path,
                        line=line,
                        message=f"blocking {desc} while holding {held[-1]}",
                        context=ctx,
                    )
                )
            for site in f.call_sites:
                if not site.held:
                    continue
                for callee in site.callees:
                    ck = key_of.get((callee.module.modname, callee.qualname))
                    if ck is None:
                        continue
                    for acq in may_acquire[ck]:
                        for h in site.held:
                            if h == _UNRESOLVED:
                                continue
                            self.edges.setdefault((h, acq), (path, site.line, ctx))
                    blocks = may_block[ck]
                    if blocks and (site.line, callee.qualname) not in seen_blocking:
                        seen_blocking.add((site.line, callee.qualname))
                        why = sorted(blocks)[0]
                        self.findings.append(
                            Finding(
                                rule="lock-blocking",
                                path=path,
                                line=site.line,
                                message=(
                                    f"call to {callee.qualname} may block "
                                    f"({why}) while holding {site.held[-1]}"
                                ),
                                context=ctx,
                            )
                        )
            self.findings.extend(f.guarded_findings)

        self._find_cycles()

    def _find_cycles(self) -> None:
        graph: dict[str, set] = {}
        for a, b in self.edges:
            if a == b and a in self.reentrant_labels:
                continue
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        sccs: list[list[str]] = []

        def strongconnect(v):
            indices[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(graph.get(v, ())):
                if w not in indices:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], indices[w])
            if lowlink[v] == indices[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)

        for v in sorted(graph):
            if v not in indices:
                strongconnect(v)
        for scc in sccs:
            in_scc = set(scc)
            is_cycle = len(scc) > 1 or scc[0] in graph.get(scc[0], ())
            if not is_cycle:
                continue
            members = sorted(scc)
            a = members[0]
            b = next(x for x in sorted(graph[a]) if x in in_scc)
            path, line, ctx = self.edges[(a, b)]
            self.findings.append(
                Finding(
                    rule="lock-cycle",
                    path=path,
                    line=line,
                    message="lock-order cycle between " + " <-> ".join(members),
                    context=ctx,
                )
            )
