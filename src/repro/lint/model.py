"""The collect pass: parse every module and index what the analyzers need.

The analyzers are deliberately repo-shaped rather than general: the
codebase creates every lock as ``threading.Lock()`` / ``threading.RLock()``
assigned to ``self.<attr>`` or a module global, and acquires them only
with ``with`` statements.  That narrowness is what lets a few hundred
lines of AST walking produce a lock-order graph precise enough to be
cross-checked against runtime observations.

Lock labels are short and globally unique by construction:
``ClassName.attr`` for instance locks (``ShardedExprStore._memo_lock``,
``_Shard.lock``) and ``modulebasename.NAME`` for module globals
(``parallel._FORK_PUBLISH_LOCK``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.pragmas import FilePragmas, parse_pragmas


def _is_lock_ctor(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` (or bare Lock/RLock)."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr in ("Lock", "RLock") and isinstance(fn.value, ast.Name)
    if isinstance(fn, ast.Name):
        return fn.id in ("Lock", "RLock")
    return False


def _looks_like_class(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped[0].isupper()


def annotation_names(node: Optional[ast.AST]) -> list[str]:
    """Class names out of an annotation (handles strings, Optional[...])."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.split("[")[0].split(".")[-1].strip().strip('"')
        return [name] if name and _looks_like_class(name) else []
    if isinstance(node, ast.Name):
        return [node.id] if _looks_like_class(node.id) else []
    if isinstance(node, ast.Attribute):
        return [node.attr] if _looks_like_class(node.attr) else []
    if isinstance(node, ast.Subscript):  # Optional[X], list[X], dict[K, V]
        return annotation_names(node.slice)
    if isinstance(node, ast.Tuple):
        out = []
        for elt in node.elts:
            out.extend(annotation_names(elt))
        return out
    if isinstance(node, ast.BinOp):  # X | None
        return annotation_names(node.left) + annotation_names(node.right)
    return []


@dataclass
class FuncInfo:
    name: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "ModuleInfo"
    classname: Optional[str]
    holds: list = field(default_factory=list)  # raw names from # holds-lock
    allows: list = field(default_factory=list)  # def-line Allow pragmas
    returns: list = field(default_factory=list)  # classes from # lint: returns
    return_types: list = field(default_factory=list)  # real -> annotations
    returns_lock: Optional[str] = None

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def end_lineno(self) -> int:
        return getattr(self.node, "end_lineno", self.node.lineno)

    def allows_rule(self, rule: str) -> Optional[object]:
        for allow in self.allows:
            if rule in allow.rules:
                return allow
        return None


@dataclass
class ClassInfo:
    name: str
    module: "ModuleInfo"
    bases: list = field(default_factory=list)
    lock_attrs: set = field(default_factory=set)
    #: attr -> set of class-name strings (from ctor assigns / annotations)
    attr_types: dict = field(default_factory=dict)
    #: attr -> raw lock name from # guarded-by
    guarded: dict = field(default_factory=dict)
    methods: dict = field(default_factory=dict)

    def lock_label(self, attr: str) -> str:
        return f"{self.name}.{attr}"


@dataclass
class ModuleInfo:
    path: str  # source-root-relative, e.g. "repro/store/sharded.py"
    modname: str  # dotted, e.g. "repro.store.sharded"
    tree: ast.Module
    pragmas: FilePragmas
    classes: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # module-level defs
    module_locks: set = field(default_factory=set)
    module_guards: dict = field(default_factory=dict)  # global -> raw lock
    #: imported name -> source module ("from repro.x import f" => f: repro.x)
    imported_names: dict = field(default_factory=dict)

    @property
    def basename(self) -> str:
        return self.modname.rsplit(".", 1)[-1]

    def lock_label(self, name: str) -> str:
        return f"{self.basename}.{name}"

    def all_funcs(self):
        for fn in self.functions.values():
            yield fn
        for cls in self.classes.values():
            for fn in cls.methods.values():
                yield fn


class Index:
    """Cross-module lookup tables for resolution."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.class_by_name: dict[str, list[ClassInfo]] = {}
        self.funcs_by_name: dict[str, list[FuncInfo]] = {}
        self.lock_attr_owners: dict[str, list[ClassInfo]] = {}
        self.guarded_attr_owners: dict[str, list[ClassInfo]] = {}
        self.subclasses: dict[str, set[str]] = {}
        self.lock_labels: set[str] = set()

    def add(self, mod: ModuleInfo) -> None:
        self.modules[mod.modname] = mod
        for name in mod.module_locks:
            self.lock_labels.add(mod.lock_label(name))
        for fn in mod.functions.values():
            self.funcs_by_name.setdefault(fn.name, []).append(fn)
        for cls in mod.classes.values():
            self.class_by_name.setdefault(cls.name, []).append(cls)
            for base in cls.bases:
                self.subclasses.setdefault(base, set()).add(cls.name)
            for attr in cls.lock_attrs:
                self.lock_attr_owners.setdefault(attr, []).append(cls)
                self.lock_labels.add(cls.lock_label(attr))
            for attr in cls.guarded:
                self.guarded_attr_owners.setdefault(attr, []).append(cls)
            for fn in cls.methods.values():
                self.funcs_by_name.setdefault(fn.name, []).append(fn)

    def classes_named(self, name: str) -> list[ClassInfo]:
        return self.class_by_name.get(name, [])

    def hierarchy(self, cls: ClassInfo) -> list[ClassInfo]:
        """cls plus its ancestors and descendants (by name, one hop deep
        in each direction is enough for this codebase's flat trees)."""
        seen = {cls.name: cls}
        frontier = list(cls.bases) + sorted(self.subclasses.get(cls.name, ()))
        for name in frontier:
            for other in self.classes_named(name):
                if other.name not in seen:
                    seen[other.name] = other
                    frontier.extend(other.bases)
                    frontier.extend(sorted(self.subclasses.get(other.name, ())))
        return list(seen.values())


def _scan_function_pragmas(fn: FuncInfo) -> None:
    pragmas = fn.module.pragmas
    line = fn.lineno
    fn.holds = list(pragmas.holds.get(line, ()))
    fn.allows = list(pragmas.allows_at(line))
    fn.returns = list(pragmas.returns.get(line, ()))
    fn.return_types = annotation_names(fn.node.returns)
    fn.returns_lock = pragmas.returns_lock.get(line)


def _infer_attr_type(value: ast.AST, param_anns: dict) -> list[str]:
    """Class names for ``self.x = <value>`` in a constructor."""
    if isinstance(value, ast.IfExp):
        return _infer_attr_type(value.body, param_anns) + _infer_attr_type(
            value.orelse, param_anns
        )
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name and _looks_like_class(name):
            return [name]
        return []
    if isinstance(value, ast.Name):
        return param_anns.get(value.id, [])
    if isinstance(value, (ast.List, ast.ListComp, ast.DictComp, ast.Dict)):
        # element types: [_Shard(...) for _ in ...] / [C(), C()]
        elts = []
        if isinstance(value, ast.ListComp):
            elts = [value.elt]
        elif isinstance(value, ast.List):
            elts = value.elts[:1]
        out = []
        for elt in elts:
            out.extend(_infer_attr_type(elt, param_anns))
        return out
    return []


def _collect_class(node: ast.ClassDef, mod: ModuleInfo) -> ClassInfo:
    cls = ClassInfo(
        name=node.name,
        module=mod,
        bases=[b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
               for b in node.bases],
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # dataclass-style field annotations
            anns = annotation_names(stmt.annotation)
            if anns:
                cls.attr_types.setdefault(stmt.target.id, set()).update(anns)
            raw = mod.pragmas.guards.get(stmt.lineno)
            if raw:
                cls.guarded[stmt.target.id] = raw
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn = FuncInfo(
            name=stmt.name,
            qualname=f"{node.name}.{stmt.name}",
            node=stmt,
            module=mod,
            classname=node.name,
        )
        _scan_function_pragmas(fn)
        cls.methods[stmt.name] = fn
        is_property = any(
            isinstance(d, ast.Name) and d.id == "property"
            for d in stmt.decorator_list
        )
        if is_property:
            anns = annotation_names(stmt.returns)
            if anns:
                cls.attr_types.setdefault(stmt.name, set()).update(anns)
        # parameter annotations, for `self.x = x` tracing
        param_anns = {}
        for arg in list(stmt.args.args) + list(stmt.args.kwonlyargs):
            anns = annotation_names(arg.annotation)
            if anns:
                param_anns[arg.arg] = anns
        for sub in ast.walk(stmt):
            targets = []
            value = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if _is_lock_ctor(value):
                    cls.lock_attrs.add(attr)
                raw = mod.pragmas.guards.get(sub.lineno)
                if raw:
                    cls.guarded.setdefault(attr, raw)
                if isinstance(sub, ast.AnnAssign):
                    anns = annotation_names(sub.annotation)
                else:
                    anns = _infer_attr_type(value, param_anns)
                if anns:
                    cls.attr_types.setdefault(attr, set()).update(
                        a for a in anns if _looks_like_class(a)
                    )
    return cls


def collect_module(path: str, modname: str, source: str) -> ModuleInfo:
    tree = ast.parse(source)
    mod = ModuleInfo(
        path=path, modname=modname, tree=tree, pragmas=parse_pragmas(source)
    )
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if _is_lock_ctor(stmt.value):
                        mod.module_locks.add(target.id)
                    raw = mod.pragmas.guards.get(stmt.lineno)
                    if raw:
                        mod.module_guards[target.id] = raw
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None and _is_lock_ctor(stmt.value):
                mod.module_locks.add(stmt.target.id)
            raw = mod.pragmas.guards.get(stmt.lineno)
            if raw:
                mod.module_guards[stmt.target.id] = raw
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FuncInfo(
                name=stmt.name,
                qualname=stmt.name,
                node=stmt,
                module=mod,
                classname=None,
            )
            _scan_function_pragmas(fn)
            mod.functions[stmt.name] = fn
        elif isinstance(stmt, ast.ClassDef):
            cls = _collect_class(stmt, mod)
            mod.classes[cls.name] = cls
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                mod.imported_names[alias.asname or alias.name] = stmt.module
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                mod.imported_names[alias.asname or alias.name] = alias.name
    return mod
