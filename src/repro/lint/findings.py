"""Finding records and the rule catalog for ``repro lint``."""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Optional

#: rule id -> one-line description (the catalog `repro lint --rules` prints).
RULES: dict[str, str] = {
    "lock-cycle": (
        "the cross-module lock-order graph has a cycle: two code paths "
        "can acquire the same locks in opposite orders (deadlock candidate)"
    ),
    "lock-blocking": (
        "a blocking operation (fsync, socket I/O, sleep, subprocess, "
        "pool submit) runs while a lock is held"
    ),
    "lock-unresolved": (
        "a lock acquisition whose lock the analyzer cannot name -- the "
        "runtime witness cannot be cross-checked against an anonymous lock"
    ),
    "guarded-by": (
        "an attribute declared `# guarded-by: <lock>` is written without "
        "that lock held"
    ),
    "det-set-iter": (
        "iteration over an unordered set in a kernel/wire module -- "
        "order-dependent output would break bit-identity (wrap in sorted())"
    ),
    "det-popitem": (
        "dict.popitem() pops in insertion order only by CPython accident; "
        "name the key you mean"
    ),
    "det-time-random": (
        "time.* / random.* in a kernel module (core/, store/) -- hashes "
        "must be pure functions of the corpus"
    ),
    "wire-dict-order": (
        "json.dumps without sort_keys=True in a wire module -- encoded "
        "bytes must not depend on dict insertion order"
    ),
    "broad-except": (
        "a bare/broad exception handler that neither re-raises nor is "
        "annotated -- silent swallowing hides real faults"
    ),
    "pragma-reason": (
        "a `# repro-lint: allow[...]` pragma without a reason= -- every "
        "suppression must say why"
    ),
    "witness-gap-site": (
        "the runtime witness observed a lock acquisition at a site the "
        "static analyzer has no label for (analyzer gap)"
    ),
    "witness-gap-edge": (
        "the runtime witness observed a nested lock acquisition the "
        "static lock-order graph does not contain (analyzer gap)"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a site.

    ``path`` is relative to the source root (``repro/store/sharded.py``)
    so witness records from any checkout compare equal.  ``context`` is
    the enclosing function's qualname when there is one.
    """

    rule: str
    path: str
    line: int
    message: str
    context: str = ""
    suppressed: Optional[str] = field(default=None, compare=False)

    def format(self) -> str:
        where = f" (in {self.context})" if self.context else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{where}"

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
            "fingerprint": fingerprint(self),
        }
        if self.suppressed is not None:
            out["suppressed"] = self.suppressed
        return out


_DIGITS = re.compile(r"\d+")


def fingerprint(finding: Finding) -> str:
    """A line-number-insensitive identity for baseline diffing.

    Stable across pure code motion: the digest covers the rule, the
    file, the enclosing qualname and the message with numbers stripped
    (line numbers leak into messages for cycles and witness edges).
    """
    core = "|".join(
        (
            finding.rule,
            finding.path,
            finding.context,
            _DIGITS.sub("#", finding.message),
        )
    )
    return hashlib.sha256(core.encode("utf-8")).hexdigest()[:16]
