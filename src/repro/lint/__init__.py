"""`repro lint`: self-hosted static analysis for the repro codebase.

The repo's two load-bearing guarantees -- bit-identity of every
engine/worker/wire path, and no-acked-write-lost under failover -- are
enforced dynamically by the differential walls and chaos smokes.  This
package is the static arm: an AST-based pass over ``src/repro`` that
checks the *disciplines* those guarantees rest on.

Three analyzers:

* **Lock discipline** (:mod:`repro.lint.locks`) -- extracts every
  ``with <lock>`` acquisition into a cross-module lock-order graph,
  reports nested-acquisition cycles (deadlock candidates), blocking
  calls made while a lock is held, and writes to attributes declared
  ``# guarded-by: <lock>`` reached outside that lock.
* **Determinism** (:mod:`repro.lint.determinism`) -- flags unordered
  ``set`` iteration and ``dict.popitem`` in kernel/wire modules,
  ``time.*``/``random.*`` in kernel modules, dict-order-dependent wire
  encoding (``json.dumps`` without ``sort_keys``), and broad exception
  handlers that swallow without re-raising.
* **Runtime witness** (:mod:`repro.testing.lockcheck` + ``--witness``)
  -- observed lock-acquisition orders from a tier-1 run are
  cross-checked against the static graph: an observed edge the
  analyzer missed is an analyzer gap (build failure); a static edge
  never observed is a stale-annotation warning.

Findings are suppressed inline with ``# repro-lint: allow[rule]
reason=...`` -- the reason is mandatory and its absence is itself a
finding.  Run it as ``repro lint`` (exit 0 clean / 1 findings /
2 internal error); see :mod:`repro.lint.runner` for the CLI.
"""

from repro.lint.findings import Finding, RULES, fingerprint
from repro.lint.runner import AnalysisResult, analyze, main

__all__ = ["Finding", "RULES", "fingerprint", "AnalysisResult", "analyze", "main"]
