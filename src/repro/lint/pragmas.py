"""Comment-level annotations the linter understands.

Four comment forms, all parsed off the token stream (so they work on
any line, including continuation lines):

``# repro-lint: allow[rule,rule2] reason=<free text>``
    Suppress those rules at this line.  A *standalone* pragma (nothing
    but whitespace before the ``#``) also covers the next line, so it
    can sit above the statement it excuses.  Placed on a ``def`` line
    (or standalone above one) it covers the whole function body --
    and for ``lock-blocking`` it additionally declares the function
    itself non-blocking to its callers, which is the right annotation
    point for deliberate patterns like fsync-before-ack: one reasoned
    pragma at the source of truth instead of one per call site.  The
    reason is mandatory; a pragma without one is a finding.

``# guarded-by: <lock>``
    On an attribute assignment (``self.x = {}  # guarded-by: lock`` in
    ``__init__``, or a module global): every later *write* to that
    attribute must happen with the named lock held.  The lock name is
    resolved in context -- a bare name is an attribute of the same
    object or a module global; ``Class.attr`` is explicit.

``# holds-lock: <lock>``
    On a ``def`` line: the function's contract is "caller holds this
    lock".  Its body is analyzed as if the lock were held (guarded
    writes are legal, nested acquisitions become graph edges).

``# lint: returns A|B``  /  ``# lint: returns-lock <label>``
    Type hints for the analyzer where inference cannot follow the
    code: a registry factory returning one of several classes, or a
    helper returning a lock object (``_memo_lock_of``).  ``returns``
    names classes; ``returns-lock`` names the lock's graph label.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field


@dataclass
class Allow:
    rules: frozenset
    reason: str
    line: int  # the pragma comment's own line (for pragma-reason findings)
    used: bool = False


@dataclass
class FilePragmas:
    """Everything comment-borne for one source file."""

    #: line -> pragmas covering that line (standalone pragmas appear
    #: under both their own line and the next).
    allows: dict = field(default_factory=dict)
    #: line -> raw lock name from a `# guarded-by:` comment.
    guards: dict = field(default_factory=dict)
    #: line -> [raw lock names] from `# holds-lock:` comments.
    holds: dict = field(default_factory=dict)
    #: line -> [class names] from `# lint: returns A|B`.
    returns: dict = field(default_factory=dict)
    #: line -> lock label from `# lint: returns-lock`.
    returns_lock: dict = field(default_factory=dict)
    #: every Allow object once (for pragma-reason checking).
    all_allows: list = field(default_factory=list)

    def allows_at(self, line: int):
        return self.allows.get(line, ())


_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\- ]+)\]\s*(?:reason=(.+))?$"
)
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*([A-Za-z_][\w.]*)")
_RETURNS_RE = re.compile(r"#\s*lint:\s*returns\s+([A-Za-z_][\w|]*)")
_RETLOCK_RE = re.compile(r"#\s*lint:\s*returns-lock\s+([A-Za-z_][\w.]*)")


def parse_pragmas(source: str) -> FilePragmas:
    out = FilePragmas()
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        row, col = tok.start
        text = tok.string
        src_line = lines[row - 1] if row - 1 < len(lines) else ""
        standalone = not src_line[:col].strip()
        m = _ALLOW_RE.search(text)
        if m:
            rules = frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            reason = (m.group(2) or "").strip()
            allow = Allow(rules=rules, reason=reason, line=row)
            out.all_allows.append(allow)
            out.allows.setdefault(row, []).append(allow)
            if standalone:
                out.allows.setdefault(row + 1, []).append(allow)
        m = _GUARD_RE.search(text)
        if m:
            out.guards[row] = m.group(1)
            if standalone:
                out.guards.setdefault(row + 1, m.group(1))
        m = _HOLDS_RE.search(text)
        if m:
            target = row + 1 if standalone else row
            out.holds.setdefault(target, []).append(m.group(1))
        m = _RETURNS_RE.search(text)
        if m:
            target = row + 1 if standalone else row
            out.returns[target] = [
                c.strip() for c in m.group(1).split("|") if c.strip()
            ]
        m = _RETLOCK_RE.search(text)
        if m:
            target = row + 1 if standalone else row
            out.returns_lock[target] = m.group(1)
    return out
