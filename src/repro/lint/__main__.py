"""``python -m repro.lint`` == ``repro lint``."""

import sys

from repro.lint.runner import main

sys.exit(main())
