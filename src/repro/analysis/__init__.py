"""Measurement machinery: timing, curve fitting, collision counting."""

from repro.analysis.collisions import (
    PAIR_FAMILIES,
    CollisionResult,
    collision_experiment,
    perfect_hash_expectation,
    theorem_bound,
)
from repro.analysis.complexity import MODELS, ModelFit, best_model, loglog_slope
from repro.analysis.timing import TimingResult, time_call

__all__ = [
    "PAIR_FAMILIES",
    "CollisionResult",
    "collision_experiment",
    "perfect_hash_expectation",
    "theorem_bound",
    "MODELS",
    "ModelFit",
    "best_model",
    "loglog_slope",
    "TimingResult",
    "time_call",
]
