"""Differential testing driver: cross-validate the algorithm zoo.

A release-quality safety net beyond the unit suite: generate a stream of
random expressions and check, for each one, that

1. every *correct* algorithm (ours, the Appendix C variant, locally
   nameless) induces exactly the same partition of subexpressions;
2. that partition equals the exact oracle (canonical de Bruijn keys);
3. alpha-renaming the expression leaves every correct algorithm's root
   hash unchanged;
4. the incremental hasher agrees with the batch hasher after a random
   rewrite;
5. the Lemma 6.1/6.2 operation bounds hold.

``python -m repro difftest --cases 500`` runs it from the CLI; any
disagreement is reported with a reproduction recipe (generator seed and
parameters), which is what you want from a fuzzer when it fires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.registry import ALGORITHMS
from repro.core.combiners import HashCombiners
from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.core.varmap import MapOpStats
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.debruijn import canonical_key
from repro.lang.expr import Expr, Lit
from repro.lang.traversal import preorder, preorder_with_paths, replace_at

__all__ = ["DiffTestReport", "run_differential_test", "main"]

#: The algorithms whose partitions must agree exactly.
_CORRECT = ("ours", "ours_lazy", "locally_nameless")


@dataclass
class DiffTestReport:
    """Outcome of a differential-testing run."""

    cases: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return f"DiffTestReport({self.cases} cases, {status})"


def _partition(hashes) -> list[list[tuple[int, ...]]]:
    groups: dict[int, list[tuple[int, ...]]] = {}
    for path, _node, value in hashes.items():
        groups.setdefault(value, []).append(path)
    return sorted(sorted(g) for g in groups.values())


def _exact_partition(expr: Expr) -> list[list[tuple[int, ...]]]:
    groups: dict[tuple, list[tuple[int, ...]]] = {}
    for path, node in preorder_with_paths(expr):
        groups.setdefault(canonical_key(node), []).append(path)
    return sorted(sorted(g) for g in groups.values())


def _check_case(
    case: int,
    rng: random.Random,
    max_size: int,
    combiners: HashCombiners,
    failures: list[str],
) -> None:
    size = rng.randint(2, max_size)
    seed = rng.randrange(1 << 30)
    shape = rng.choice(("balanced", "unbalanced"))
    p_let = rng.choice((0.0, 0.25))
    p_lit = rng.choice((0.0, 0.2))
    recipe = (
        f"random_expr({size}, seed={seed}, shape={shape!r}, "
        f"p_let={p_let}, p_lit={p_lit})"
    )
    expr = random_expr(size, seed=seed, shape=shape, p_let=p_let, p_lit=p_lit)

    # 1 + 2: partitions agree with each other and with the oracle.
    reference = _exact_partition(expr)
    for name in _CORRECT:
        partition = _partition(ALGORITHMS[name](expr, combiners))
        if partition != reference:
            failures.append(
                f"case {case}: {name} partition disagrees with oracle on {recipe}"
            )

    # 3: alpha-invariance of root hashes.
    renamed = alpha_rename(expr, seed=case)
    for name in _CORRECT:
        algorithm = ALGORITHMS[name]
        if algorithm(expr, combiners).root_hash != algorithm(renamed, combiners).root_hash:
            failures.append(
                f"case {case}: {name} root hash not alpha-invariant on {recipe}"
            )

    # 4: incremental == batch after one random rewrite.
    paths = [p for p, _ in preorder_with_paths(expr)]
    path = paths[rng.randrange(len(paths))]
    replacement = Lit(rng.randrange(1000))
    hasher = IncrementalHasher(expr, combiners)
    hasher.replace(path, replacement)
    batch = alpha_hash_all(replace_at(expr, path, replacement), combiners)
    if hasher.root_hash != batch.root_hash:
        failures.append(
            f"case {case}: incremental != batch after replace at {path} on {recipe}"
        )

    # 5: Lemma bounds.
    import math

    stats = MapOpStats()
    alpha_hash_all(expr, combiners, stats=stats)
    n = expr.size
    if stats.merge_entries > n * math.log2(max(n, 2)):
        failures.append(f"case {case}: Lemma 6.1 bound violated on {recipe}")
    if stats.singleton + stats.remove > n:
        failures.append(f"case {case}: Lemma 6.2 bound violated on {recipe}")


def run_differential_test(
    cases: int = 100,
    max_size: int = 120,
    seed: int = 0,
    bits: int = 64,
) -> DiffTestReport:
    """Run ``cases`` random cross-validation cases."""
    rng = random.Random(seed)
    combiners = HashCombiners(bits=bits, seed=seed ^ 0xD1FF)
    report = DiffTestReport(cases=cases)
    for case in range(cases):
        _check_case(case, rng, max_size, combiners, report.failures)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--max-size", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=64)
    args = parser.parse_args(argv)
    report = run_differential_test(
        cases=args.cases, max_size=args.max_size, seed=args.seed, bits=args.bits
    )
    if report.ok:
        print(f"differential test: {report.cases} cases, all agree")
        return 0
    for failure in report.failures:
        print(f"FAIL: {failure}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
