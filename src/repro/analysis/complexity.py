"""Fitting measured runtimes to asymptotic models.

Figure 2/3 of the paper overlay guide lines (O(n), O(n log^2 n),
O(n^2 log n)) on log-log plots; since we render tables rather than
plots, this module quantifies the same comparison:

* :func:`loglog_slope` -- the least-squares slope of log(t) vs log(n),
  the standard empirical-order estimator (≈1 linear, ≈2 quadratic);
* :func:`best_model` -- relative-error least-squares against the named
  model shapes, returning the best-fitting one.

Both use only large-n samples by default (small sizes are dominated by
constant overheads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["loglog_slope", "best_model", "ModelFit", "MODELS"]

#: name -> shape function of n (constants factored out by the fit).
MODELS: dict[str, Callable[[float], float]] = {
    "n": lambda n: n,
    "n log n": lambda n: n * math.log2(n),
    "n log^2 n": lambda n: n * math.log2(n) ** 2,
    "n^2": lambda n: n * n,
    "n^2 log n": lambda n: n * n * math.log2(n),
}


def loglog_slope(
    sizes: Sequence[int], times: Sequence[float], tail: int | None = None
) -> float:
    """Least-squares slope of ``log t`` against ``log n``.

    ``tail`` restricts the fit to the last ``tail`` points (defaults to
    all points with n >= 256, or everything if too few).
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need >= 2 matching (size, time) samples")
    pairs = [(n, t) for n, t in zip(sizes, times) if t > 0]
    if tail is not None:
        pairs = pairs[-tail:]
    else:
        big = [(n, t) for n, t in pairs if n >= 256]
        if len(big) >= 2:
            pairs = big
    xs = np.log([n for n, _ in pairs])
    ys = np.log([t for _, t in pairs])
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)


@dataclass(frozen=True)
class ModelFit:
    """One model's fit quality: scale constant and relative RMS error."""

    name: str
    scale: float
    rel_rms_error: float


def best_model(
    sizes: Sequence[int],
    times: Sequence[float],
    candidates: Sequence[str] = ("n", "n log n", "n log^2 n", "n^2", "n^2 log n"),
) -> ModelFit:
    """The candidate model minimising relative RMS error.

    For each model ``m`` the scale ``c`` minimising
    ``sum ((t_i - c*m(n_i)) / t_i)^2`` is closed-form; the winner is the
    model with the smallest residual.  Ties in shape at small n are why
    callers should pass a decade or more of sizes.
    """
    fits = [_fit_one(name, sizes, times) for name in candidates]
    return min(fits, key=lambda f: f.rel_rms_error)


def _fit_one(name: str, sizes: Sequence[int], times: Sequence[float]) -> ModelFit:
    shape = MODELS[name]
    ms = np.array([shape(n) for n in sizes], dtype=float)
    ts = np.array(times, dtype=float)
    weights = 1.0 / ts  # relative error weighting
    numerator = float(np.sum(weights * weights * ms * ts))
    denominator = float(np.sum(weights * weights * ms * ms))
    scale = numerator / denominator if denominator else 0.0
    residual = (ts - scale * ms) / ts
    rel_rms = float(np.sqrt(np.mean(residual * residual)))
    return ModelFit(name, scale, rel_rms)
