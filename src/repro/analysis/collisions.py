"""The Appendix B collision experiment engine.

Measures how often the hash of two non-alpha-equivalent expressions of
the same size collides, for

* **random** pairs -- two independent balanced random expressions
  (pairs that happen to be alpha-equivalent are discarded, as in the
  appendix), and
* **adversarial** pairs -- the Appendix B.1 construction: a differing
  seed pair wrapped identically, so that a collision anywhere below
  propagates to the root.

Per trial the hash combiners are re-drawn from a trial-specific seed,
matching the theorem's model of randomly chosen combiners ("while for a
fixed seed one can laboriously find a collision, there is no pair of
expressions that would collide reliably across many seeds").

Reference lines: a *perfect* hash into ``2^b`` codes collides at rate
``2^-b`` (one per ``2^b`` trials in expectation); Theorem 6.7 upper
bounds the rate by ``5(|e1|+|e2|)/2^b = 10n/2^b``.

The appendix runs 10 * 2^16 trials per size; that is feasible here but
slow in pure Python, so the trial count is a parameter (the harness
scales results to "collisions per 2^16 trials" either way).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.combiners import HashCombiners
from repro.core.hashed import alpha_hash_root
from repro.gen.adversarial import adversarial_pair
from repro.gen.random_exprs import random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Expr

__all__ = [
    "CollisionResult",
    "collision_experiment",
    "perfect_hash_expectation",
    "theorem_bound",
    "PAIR_FAMILIES",
]

#: The appendix's scaling unit: results are reported per 2^16 trials.
_SCALE_TRIALS = 1 << 16


@dataclass(frozen=True)
class CollisionResult:
    """Collision counts for one (family, size) cell."""

    family: str
    size: int
    bits: int
    trials: int
    collisions: int

    @property
    def rate(self) -> float:
        return self.collisions / self.trials if self.trials else 0.0

    @property
    def per_2_16(self) -> float:
        """Collisions scaled to the appendix's 2^16-trial unit."""
        return self.rate * _SCALE_TRIALS

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CollisionResult({self.family}, n={self.size}: "
            f"{self.collisions}/{self.trials} = {self.per_2_16:.2f} per 2^16)"
        )


def perfect_hash_expectation(bits: int) -> float:
    """Expected collisions per 2^16 trials for a perfect b-bit hash."""
    return _SCALE_TRIALS / float(1 << bits)


def theorem_bound(size: int, bits: int) -> float:
    """Theorem 6.7's bound per 2^16 trials: 5(|e1|+|e2|)/2^b = 10n/2^b."""
    return _SCALE_TRIALS * (10.0 * size) / float(1 << bits)


def _random_pair(size: int, rng: random.Random) -> tuple[Expr, Expr]:
    e1 = random_expr(size, rng=rng, shape="balanced")
    e2 = random_expr(size, rng=rng, shape="balanced")
    return e1, e2


def _adversarial(size: int, rng: random.Random) -> tuple[Expr, Expr]:
    return adversarial_pair(size, rng=rng)


PAIR_FAMILIES: dict[str, Callable[[int, random.Random], tuple[Expr, Expr]]] = {
    "random": _random_pair,
    "adversarial": _adversarial,
}


def collision_experiment(
    family: str,
    size: int,
    trials: int,
    bits: int = 16,
    seed: int = 0,
    hash_fn: Optional[Callable[[Expr, HashCombiners], int]] = None,
    redraw_combiners: bool = True,
) -> CollisionResult:
    """Count root-hash collisions over ``trials`` expression pairs.

    ``hash_fn`` defaults to the paper's algorithm
    (:func:`~repro.core.hashed.alpha_hash_root`); pass another registry
    algorithm's root-hash to stress it with the same pairs.
    ``redraw_combiners=False`` keeps a single fixed-seed combiner family
    across trials (the deterministic-hash configuration).
    """
    try:
        make_pair = PAIR_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown pair family {family!r}; available: {sorted(PAIR_FAMILIES)}"
        ) from None
    if hash_fn is None:
        hash_fn = lambda e, c: alpha_hash_root(e, c)  # noqa: E731

    rng = random.Random((seed << 20) ^ size ^ hash(family))
    fixed = HashCombiners(bits=bits, seed=seed)
    collisions = 0
    performed = 0
    while performed < trials:
        e1, e2 = make_pair(size, rng)
        if family == "random" and alpha_equivalent(e1, e2):
            continue  # discard, as in the appendix
        if redraw_combiners:
            combiners = HashCombiners(bits=bits, seed=(seed << 32) | performed)
        else:
            combiners = fixed
        if hash_fn(e1, combiners) == hash_fn(e2, combiners):
            collisions += 1
        performed += 1
    return CollisionResult(family, size, bits, trials, collisions)
