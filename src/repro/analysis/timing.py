"""Timing utilities for the Section 7 experiments.

Mirrors the paper's measurement discipline: "The garbage collector was
disabled during timing."  Each measurement runs a warmup pass, then
``repeats`` timed passes with :func:`time.perf_counter`, reporting the
minimum (the standard low-noise estimator for CPU-bound code) alongside
the mean.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingResult", "time_call"]


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock samples for one measured call."""

    times: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def best_ms(self) -> float:
        return self.best * 1e3

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimingResult(best={self.best * 1e3:.3f} ms, n={len(self.times)})"


def time_call(
    fn: Callable[[], object],
    repeats: int = 3,
    warmup: int = 1,
    disable_gc: bool = True,
) -> TimingResult:
    """Time ``fn()`` with warmup and GC control."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    was_enabled = gc.isenabled()
    if disable_gc:
        gc.disable()
    try:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
    finally:
        if disable_gc and was_enabled:
            gc.enable()
    return TimingResult(tuple(samples))
