"""Vectorized arena kernel wall + shared-memory fan-out hygiene.

PR 6's contract has three legs, each pinned here:

* **Differential wall** -- :func:`repro.core.arena.arena_hash_vec` is
  bit-identical to the scalar kernel (and through it to
  ``alpha_hash_all``) at every combiner width, on mixed/adversarial/
  depth-5000 corpora, under ``only=`` restriction and under
  memo-interleaved chunked passes that mix both kernels.
* **No-NumPy fallback** -- ``kernel="auto"`` degrades to the scalar
  kernel, forcing ``vec`` fails loudly (``ValueError`` at the kernel
  layer, :class:`~repro.api.PlanError` at the planner), and the
  shared-memory attach path works on ``memoryview`` columns alone.
* **Lifecycle hygiene** -- shared-memory segments never outlive their
  batch (even when a worker is SIGKILLed mid-batch), a broken pool
  recovers on the next call, and a dropped never-closed pool leaves no
  live children (GC finalizer in-process, atexit drain across a real
  interpreter exit).
"""

import gc
import glob
import os
import signal
import subprocess
import sys
import textwrap
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api import HashRequest, PlanError, Session
from repro.core import arena as arena_mod
from repro.core import arena_shm as arena_shm_mod
from repro.core.arena import (
    ARENA_ENGINES,
    ENGINE_CHOICES,
    HAVE_NUMPY,
    ArenaMemo,
    arena_hash,
    arena_hash_any,
    arena_hash_vec,
    engine_family,
    engine_kernel,
    flatten_corpus,
    resolve_kernel,
)
from repro.core.arena_shm import (
    attach_arena,
    attach_arena_cached,
    drop_attachments,
    share_arena,
)
from repro.core.combiners import HashCombiners
from repro.store import ExprStore, WorkerPool, parallel_hash_corpus

from test_arena import (
    DEPTH_DEEP,
    lam_chain,
    left_skewed_app,
    let_chain,
    mixed_corpus,
    right_skewed_app,
    tree_hashes,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="vec kernel needs NumPy")

WIDTHS = [16, 32, 64, 96, 128]


def vec_root_hashes(corpus, combiners=None):
    arena, roots = flatten_corpus(corpus)
    tops = arena_hash_vec(arena, combiners)
    return [tops[r] for r in roots]


@needs_numpy
class TestVecDifferential:
    """Bit-identity of the vectorized kernel against the scalar oracle."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return mixed_corpus(400, seed=11)

    @pytest.fixture(scope="class")
    def flat(self, corpus):
        return flatten_corpus(corpus)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_every_width_matches_scalar(self, flat, bits):
        arena, _roots = flat
        combiners = HashCombiners(bits=bits)
        assert arena_hash_vec(arena, combiners) == arena_hash(arena, combiners)

    def test_tree_oracle(self, corpus):
        assert vec_root_hashes(corpus) == tree_hashes(corpus)

    def test_depth_5000_chains(self):
        corpus = [
            left_skewed_app(DEPTH_DEEP),
            right_skewed_app(DEPTH_DEEP),
            lam_chain(DEPTH_DEEP),
            let_chain(DEPTH_DEEP),
        ]
        arena, roots = flatten_corpus(corpus)
        assert arena_hash_vec(arena) == arena_hash(arena)

    def test_adversarial_corpus(self):
        corpus = mixed_corpus(120, seed=31, size=120)
        assert vec_root_hashes(corpus) == tree_hashes(corpus)

    @pytest.mark.parametrize("bits", [64, 128])
    def test_only_restricted_runs(self, flat, bits):
        arena, roots = flat
        combiners = HashCombiners(bits=bits)
        subset = sorted(set(roots))[::3]
        vec = arena_hash_vec(arena, combiners, only=subset)
        scalar = arena_hash(arena, combiners, only=subset)
        assert [vec[r] for r in subset] == [scalar[r] for r in subset]

    def test_empty_and_tiny_corpora(self):
        from repro.lang.expr import Lit, Var

        assert arena_hash_vec(flatten_corpus([])[0]) == []
        for item in (Var("x"), Lit(7)):
            assert vec_root_hashes([item]) == tree_hashes([item])

    def test_memo_interleaved_kernels(self, corpus):
        """Chunked passes mixing both kernels over one shared memo."""
        arena, roots = flatten_corpus(corpus)
        reference = arena_hash(arena)
        memo = ArenaMemo(len(arena))
        uroots = sorted(set(roots))
        tops = {}
        chunk = max(1, len(uroots) // 5)
        for i in range(0, len(uroots), chunk):
            part = uroots[i : i + chunk]
            kernel = arena_hash_vec if (i // chunk) % 2 else arena_hash
            got = kernel(arena, only=part, memo=memo)
            tops.update((r, got[r]) for r in part)
        assert [tops[r] for r in uroots] == [reference[r] for r in uroots]


class TestScalarFallback:
    """Behaviour of every layer when NumPy is (simulated) absent."""

    def test_resolve_kernel_auto_degrades(self, monkeypatch):
        monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
        assert resolve_kernel("auto") == "scalar"

    def test_forced_vec_is_an_error(self, monkeypatch):
        monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
        with pytest.raises(ValueError, match="requires NumPy"):
            resolve_kernel("vec")

    def test_arena_hash_any_auto_falls_back(self, monkeypatch):
        corpus = mixed_corpus(40, seed=3)
        arena, roots = flatten_corpus(corpus)
        reference = arena_hash(arena)
        monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
        assert arena_hash_any(arena, kernel="auto") == reference

    def test_planner_rejects_forced_vec(self, monkeypatch):
        monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
        with Session() as session:
            with pytest.raises(PlanError, match="requires NumPy"):
                session.plan(
                    HashRequest(mixed_corpus(4, seed=1), engine="arena-vec")
                )

    def test_planner_auto_reason_records_fallback(self, monkeypatch):
        monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
        with Session() as session:
            plan = session.plan(
                HashRequest(mixed_corpus(4, seed=1), engine="arena")
            )
        assert plan.kernel == "scalar"
        assert any("scalar fallback" in reason for reason in plan.reasons)

    def test_shm_attach_without_numpy(self, monkeypatch):
        """memoryview columns satisfy the scalar kernel end to end."""
        corpus = mixed_corpus(40, seed=9)
        arena, roots = flatten_corpus(corpus)
        reference = arena_hash(arena)
        monkeypatch.setattr(arena_shm_mod, "_np", None)
        handle = share_arena(arena)
        try:
            attached, shm = attach_arena(handle.meta())
            try:
                assert arena_hash(attached) == reference
            finally:
                for column in ("left", "right", "aux", "sizes", "depths", "op"):
                    view = getattr(attached, column)
                    setattr(attached, column, None)
                    if isinstance(view, memoryview):
                        view.release()
                view = None
                shm.close()
        finally:
            handle.close_unlink()


class TestEngineSurface:
    """The engine/kernel naming layer the API and CLI share."""

    def test_engine_choices_cover_the_family(self):
        assert set(ARENA_ENGINES) == {"arena", "arena-vec", "arena-scalar"}
        assert set(ARENA_ENGINES) < set(ENGINE_CHOICES)
        assert "tree" in ENGINE_CHOICES and "auto" in ENGINE_CHOICES

    @pytest.mark.parametrize(
        "engine,family,kernel",
        [
            ("arena", "arena", "auto"),
            ("arena-vec", "arena", "vec"),
            ("arena-scalar", "arena", "scalar"),
            ("tree", "tree", "auto"),
        ],
    )
    def test_family_and_kernel_split(self, engine, family, kernel):
        assert engine_family(engine) == family
        assert engine_kernel(engine) == kernel

    def test_session_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            Session(engine="arena-warp")

    @needs_numpy
    def test_store_accepts_kernel_engines(self):
        corpus = mixed_corpus(60, seed=13)
        store = ExprStore()
        want = [store.hash_expr(e) for e in corpus]
        for engine in ARENA_ENGINES:
            assert ExprStore().hash_corpus(corpus, engine=engine) == want

    @needs_numpy
    def test_forced_kernels_agree_through_the_session(self):
        corpus = mixed_corpus(60, seed=13)
        with Session() as session:
            vec = session.execute(HashRequest(corpus, engine="arena-vec"))
            scalar = session.execute(HashRequest(corpus, engine="arena-scalar"))
        assert vec == scalar


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
)
class TestSharedMemoryHygiene:
    """Segments must never outlive their batch, crash or no crash."""

    @staticmethod
    def _segments() -> set:
        return set(glob.glob("/dev/shm/psm_*"))

    def test_roundtrip_and_unlink(self):
        corpus = mixed_corpus(60, seed=17)
        arena, _roots = flatten_corpus(corpus)
        reference = arena_hash(arena)
        before = self._segments()
        handle = share_arena(arena)
        try:
            attached = attach_arena_cached(handle.meta())
            assert attach_arena_cached(handle.meta()) is attached
            assert arena_hash_any(attached, kernel="scalar") == reference
            if HAVE_NUMPY:
                assert arena_hash_any(attached, kernel="vec") == reference
        finally:
            drop_attachments()
            handle.close_unlink()
        handle.close_unlink()  # idempotent
        assert self._segments() <= before

    def test_parallel_batches_leave_no_segments(self):
        corpus = mixed_corpus(80, seed=23)
        want = ExprStore().hash_corpus(corpus, engine="arena")
        before = self._segments()
        with WorkerPool(workers=2, mode="spawn") as pool:
            got = parallel_hash_corpus(
                corpus, workers=2, engine="arena", pool=pool
            )
        assert got == want
        assert self._segments() <= before

    def test_worker_crash_unlinks_segments_and_pool_recovers(self):
        corpus = mixed_corpus(80, seed=27)
        want = ExprStore().hash_corpus(corpus, engine="arena")
        before = self._segments()
        with WorkerPool(workers=2, mode="spawn") as pool:
            # Warm the pool so there are real workers to kill.
            assert (
                parallel_hash_corpus(
                    corpus, workers=2, engine="arena", pool=pool
                )
                == want
            )
            victim = next(iter(pool._pool._processes))
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not pool._pool._broken:
                time.sleep(0.05)
            with pytest.raises(BrokenProcessPool):
                parallel_hash_corpus(
                    corpus, workers=2, engine="arena", pool=pool
                )
            # The crash path's finally must have unlinked the batch's
            # segment, and the broken executor must have been dropped
            # so the very next call gets a fresh pool.
            assert self._segments() <= before
            assert not pool.started
            assert (
                parallel_hash_corpus(
                    corpus, workers=2, engine="arena", pool=pool
                )
                == want
            )
        assert self._segments() <= before


class TestWorkerPoolLifecycle:
    """A dropped, never-closed pool must not leak worker processes."""

    @staticmethod
    def _alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - pid reused
            return True
        return True

    def test_gc_finalizer_drains_workers(self):
        corpus = mixed_corpus(40, seed=33)
        pool = WorkerPool(workers=2, mode="spawn")
        parallel_hash_corpus(corpus, workers=2, engine="arena", pool=pool)
        pids = list(pool._pool._processes)
        assert pids
        del pool
        gc.collect()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and any(map(self._alive, pids)):
            time.sleep(0.05)
        assert not any(map(self._alive, pids))

    def test_dropped_session_leaves_no_children_past_exit(self, tmp_path):
        """A real interpreter exit with a live, un-close()d pool."""
        script = textwrap.dedent(
            """
            import sys

            from repro.api import HashRequest, Session
            from repro.gen.random_exprs import random_expr

            if __name__ == "__main__":  # spawn re-imports __main__
                corpus = [random_expr(40, seed=i) for i in range(40)]
                session = Session(workers=2, parallel_mode="spawn")
                session.execute(HashRequest(corpus, engine="arena"))
                pids = [
                    pid
                    for pool in session._pools.values()
                    for pid in pool._pool._processes
                ]
                print("PIDS", *pids, flush=True)
                # Neither close() nor __exit__: the session (and its
                # pools) are simply dropped on interpreter exit.
                sys.exit(0)
            """
        )
        path = tmp_path / "drop_session.py"
        path.write_text(script)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        pid_lines = [
            line for line in proc.stdout.splitlines() if line.startswith("PIDS")
        ]
        assert pid_lines, proc.stdout
        pids = [int(token) for token in pid_lines[0].split()[1:]]
        assert pids
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and any(map(self._alive, pids)):
            time.sleep(0.05)
        assert not any(map(self._alive, pids))
