"""Tests for the measurement machinery (timing, fits, collisions)."""

import math

import pytest

from repro.analysis.collisions import (
    PAIR_FAMILIES,
    collision_experiment,
    perfect_hash_expectation,
    theorem_bound,
)
from repro.analysis.complexity import MODELS, best_model, loglog_slope
from repro.analysis.timing import TimingResult, time_call


class TestTiming:
    def test_returns_samples(self):
        result = time_call(lambda: sum(range(100)), repeats=3, warmup=1)
        assert len(result.times) == 3
        assert result.best <= result.mean
        assert result.best_ms == result.best * 1e3

    def test_warmup_not_counted(self):
        calls = []
        result = time_call(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5
        assert len(result.times) == 2

    def test_gc_reenabled(self):
        import gc

        assert gc.isenabled()
        time_call(lambda: None, repeats=1)
        assert gc.isenabled()

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestComplexityFits:
    def _series(self, fn, scale):
        sizes = [2**k for k in range(8, 16)]
        return sizes, [fn(n) * scale for n in sizes]

    def test_slope_linear(self):
        sizes, times = self._series(lambda n: n, 1e-7)
        assert 0.95 <= loglog_slope(sizes, times) <= 1.05

    def test_slope_quadratic(self):
        sizes, times = self._series(lambda n: n * n, 1e-9)
        assert 1.95 <= loglog_slope(sizes, times) <= 2.05

    def test_slope_nlogn_between(self):
        sizes, times = self._series(lambda n: n * math.log2(n), 1e-8)
        slope = loglog_slope(sizes, times)
        assert 1.05 <= slope <= 1.45

    @pytest.mark.parametrize("name", list(MODELS))
    def test_best_model_recovers_shape(self, name):
        sizes, times = self._series(MODELS[name], 3e-8)
        assert best_model(sizes, times).name == name

    def test_best_model_with_noise(self):
        import random

        rng = random.Random(0)
        sizes = [2**k for k in range(8, 16)]
        times = [n * math.log2(n) * 1e-8 * rng.uniform(0.9, 1.1) for n in sizes]
        fit = best_model(sizes, times)
        assert fit.name in ("n log n", "n log^2 n")

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            loglog_slope([10], [1.0])

    def test_tail_parameter(self):
        sizes = [10, 100, 1000, 10000]
        times = [1.0, 1.0, 2.0, 4.0]
        full = loglog_slope(sizes, times, tail=4)
        tail = loglog_slope(sizes, times, tail=2)
        assert tail > full


class TestCollisionEngine:
    def test_reference_lines(self):
        assert perfect_hash_expectation(16) == 1.0
        assert perfect_hash_expectation(12) == 16.0
        assert theorem_bound(128, 16) == 1280.0

    def test_families_registered(self):
        assert set(PAIR_FAMILIES) == {"random", "adversarial"}

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            collision_experiment("bogus", 64, 5)

    def test_runs_and_scales(self):
        result = collision_experiment("adversarial", 32, trials=20, bits=16, seed=1)
        assert result.trials == 20
        assert result.per_2_16 == result.rate * 65536

    def test_tiny_width_shows_collisions(self):
        # at 8 bits the floor is 256 per 2^16; a handful of trials
        # should already see some collisions for adversarial pairs.
        result = collision_experiment("adversarial", 200, trials=120, bits=8, seed=0)
        assert result.collisions > 0

    def test_bound_holds(self):
        for family in ("random", "adversarial"):
            result = collision_experiment(family, 64, trials=60, bits=12, seed=2)
            assert result.per_2_16 <= theorem_bound(64, 12)

    def test_fixed_combiners_mode(self):
        result = collision_experiment(
            "random", 40, trials=15, bits=16, seed=3, redraw_combiners=False
        )
        assert result.trials == 15

    def test_custom_hash_fn(self):
        from repro.baselines.structural import structural_hash_all

        result = collision_experiment(
            "adversarial",
            32,
            trials=10,
            bits=16,
            hash_fn=lambda e, c: structural_hash_all(e, c).root_hash,
        )
        assert result.trials == 10
