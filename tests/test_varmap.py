"""Unit and property tests for variable maps (both flavours).

The load-bearing invariant is Section 5.2's XOR maintenance: after any
sequence of operations, a :class:`HashedVarMap`'s incrementally
maintained hash equals the XOR-of-entry-hashes recomputed from scratch.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.combiners import HashCombiners
from repro.core.position_tree import PTBoth, PTHere, PTLeftOnly, PTRightOnly
from repro.core.varmap import HashedVarMap, MapOpStats, VarMapTree, entry_hash

import pytest

C = HashCombiners(seed=55)


class TestVarMapTree:
    def test_empty_and_singleton(self):
        assert len(VarMapTree.empty()) == 0
        m = VarMapTree.singleton("x", PTHere)
        assert len(m) == 1 and "x" in m

    def test_removed_returns_pos(self):
        m = VarMapTree.singleton("x", PTHere)
        m2, pos = m.removed("x")
        assert pos is PTHere
        assert len(m2) == 0
        assert len(m) == 1  # original untouched

    def test_removed_missing(self):
        m = VarMapTree.singleton("x", PTHere)
        m2, pos = m.removed("y")
        assert pos is None and m2 is m

    def test_extended_does_not_mutate(self):
        m = VarMapTree.empty()
        m2 = m.extended("x", PTHere)
        assert "x" in m2 and "x" not in m

    def test_altered_existing_and_missing(self):
        m = VarMapTree.singleton("x", PTHere)
        m2 = m.altered("x", lambda old: PTLeftOnly(old))
        assert isinstance(m2.get("x"), PTLeftOnly)
        m3 = m.altered("y", lambda old: PTHere if old is None else old)
        assert m3.get("y") is PTHere

    def test_map_maybe_drops_nones(self):
        m = VarMapTree(
            {"a": PTLeftOnly(PTHere), "b": PTRightOnly(PTHere), "c": PTHere}
        )
        left = m.map_maybe(
            lambda p: p.child if isinstance(p, PTLeftOnly) else None
        )
        assert set(left.entries) == {"a"}

    def test_merged_three_cases(self):
        left = VarMapTree({"a": PTHere, "c": PTHere})
        right = VarMapTree({"b": PTHere, "c": PTHere})
        merged = VarMapTree.merged(
            left, right, PTLeftOnly, PTRightOnly, PTBoth
        )
        assert isinstance(merged.get("a"), PTLeftOnly)
        assert isinstance(merged.get("b"), PTRightOnly)
        assert isinstance(merged.get("c"), PTBoth)

    def test_find_singleton(self):
        assert VarMapTree.singleton("z", PTHere).find_singleton() == "z"
        with pytest.raises(ValueError):
            VarMapTree.empty().find_singleton()
        with pytest.raises(ValueError):
            VarMapTree({"a": PTHere, "b": PTHere}).find_singleton()

    def test_to_list(self):
        m = VarMapTree({"a": PTHere, "b": PTHere})
        assert sorted(name for name, _ in m.to_list()) == ["a", "b"]


class TestHashedVarMapBasics:
    def test_empty(self):
        m = HashedVarMap.empty()
        assert len(m) == 0 and m.hash == 0

    def test_singleton_hash_is_entry_hash(self):
        m = HashedVarMap.singleton(C, "x", 123)
        assert m.hash == entry_hash(C, "x", 123)

    def test_remove_restores_xor(self):
        m = HashedVarMap.singleton(C, "x", 123)
        m.set(C, "y", 456)
        pos = m.remove(C, "y")
        assert pos == 456
        assert m.hash == entry_hash(C, "x", 123)

    def test_remove_missing(self):
        m = HashedVarMap.singleton(C, "x", 1)
        before = m.hash
        assert m.remove(C, "zz") is None
        assert m.hash == before

    def test_set_overwrites(self):
        m = HashedVarMap.empty()
        m.set(C, "x", 1)
        m.set(C, "x", 2)
        assert m.get("x") == 2
        assert m.hash == entry_hash(C, "x", 2)

    def test_snapshot_independent(self):
        m = HashedVarMap.singleton(C, "x", 1)
        snap = m.snapshot()
        m.set(C, "y", 2)
        assert "y" not in snap
        assert snap.hash == entry_hash(C, "x", 1)

    def test_order_insensitive_hash(self):
        a = HashedVarMap.empty()
        a.set(C, "x", 1)
        a.set(C, "y", 2)
        b = HashedVarMap.empty()
        b.set(C, "y", 2)
        b.set(C, "x", 1)
        assert a.hash == b.hash


@st.composite
def op_sequences(draw):
    """Random sequences of set/remove operations over a small key space."""
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(("set", "remove")))
        key = draw(st.sampled_from(("a", "b", "c", "d", "e")))
        value = draw(st.integers(0, 2**64 - 1))
        ops.append((kind, key, value))
    return ops


class TestXORInvariant:
    @given(op_sequences())
    def test_incremental_equals_recomputed(self, ops):
        m = HashedVarMap.empty()
        for kind, key, value in ops:
            if kind == "set":
                m.set(C, key, value)
            else:
                m.remove(C, key)
            assert m.hash == m.recomputed_hash(C)

    @given(op_sequences())
    def test_16bit_space_invariant(self, ops):
        c16 = HashCombiners(bits=16, seed=3)
        m = HashedVarMap.empty()
        for kind, key, value in ops:
            if kind == "set":
                m.set(c16, key, value & 0xFFFF)
            else:
                m.remove(c16, key)
        assert m.hash == m.recomputed_hash(c16)
        assert m.hash < (1 << 16)


class TestMapOpStats:
    def test_total(self):
        stats = MapOpStats(singleton=3, remove=2, merge_entries=5)
        assert stats.total == 10

    def test_default_zero(self):
        assert MapOpStats().total == 0
