"""Tests for the deterministic fault-injection harness (ISSUE 8).

The harness only earns its place if the same seed always produces the
same faults, and if the faults it injects are real enough that the
client/coordinator retry machinery is what absorbs them -- asserted
here by comparing results through a faulty proxy against a direct
connection, bit for bit.
"""

import random
import subprocess
import sys
import time

import pytest

from repro.gen.random_exprs import random_expr
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.testing import Fault, FaultSchedule, FaultyProxy, ProcessReaper


def corpus(n, seed=17, size=30):
    rng = random.Random(seed)
    return [random_expr(size, rng=rng, p_let=0.2, p_lit=0.2) for _ in range(n)]


class TestFaultSchedule:
    def test_same_seed_same_events(self):
        a = FaultSchedule.from_seed(1234, connections=60)
        b = FaultSchedule.from_seed(1234, connections=60)
        assert a.events == b.events
        assert a.events  # 25% of 60 connections: the mix is non-empty

    def test_different_seeds_differ(self):
        a = FaultSchedule.from_seed(1, connections=60)
        b = FaultSchedule.from_seed(2, connections=60)
        assert a.events != b.events

    def test_kill_event_rides_along(self):
        schedule = FaultSchedule.from_seed(
            7, connections=10, kill_target="shard-0", kill_after_batch=5
        )
        assert schedule.kill_after_batch(4) is None
        event = schedule.kill_after_batch(5)
        assert event is not None and event.arg == "shard-0"

    def test_kill_target_needs_batch(self):
        with pytest.raises(ValueError, match="kill_after_batch"):
            FaultSchedule.from_seed(7, kill_target="shard-0")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode", 3)

    def test_lookup_by_connection(self):
        schedule = FaultSchedule(
            events=[Fault("refuse", 2), Fault("delay", 5, 0.01)]
        )
        assert schedule.network_fault(0) is None
        assert schedule.network_fault(2).kind == "refuse"
        assert schedule.network_fault(5).arg == 0.01


class TestFaultyProxy:
    @pytest.fixture()
    def server(self):
        with ReproServer(port=0) as live:
            yield live

    def test_clean_schedule_is_transparent(self, server):
        with FaultyProxy(
            "127.0.0.1", server.port, FaultSchedule(events=[])
        ) as proxy:
            direct = ServiceClient(server.url).hash_corpus(corpus(10))
            proxied = ServiceClient(proxy.url, retries=0).hash_corpus(corpus(10))
            assert proxied == direct

    def test_refusals_absorbed_by_retries(self, server):
        schedule = FaultSchedule(
            events=[Fault("refuse", 0), Fault("refuse", 1)]
        )
        with FaultyProxy("127.0.0.1", server.port, schedule) as proxy:
            client = ServiceClient(proxy.url, retries=4, backoff=0.02)
            hashes = client.hash_corpus(corpus(8))
            assert hashes == ServiceClient(server.url).hash_corpus(corpus(8))
            assert client.counters["retries"] >= 2
            assert [f.kind for f in proxy.faults_fired] == ["refuse", "refuse"]

    def test_refusal_without_retries_fails(self, server):
        schedule = FaultSchedule(events=[Fault("refuse", 0)])
        with FaultyProxy("127.0.0.1", server.port, schedule) as proxy:
            client = ServiceClient(proxy.url, retries=0)
            with pytest.raises(ServiceError):
                client.health()

    def test_mid_body_cut_is_retried_idempotently(self, server):
        """The cut fires *after* the server interned the batch; the
        retry must land on the same ids (interning is idempotent)."""
        schedule = FaultSchedule(events=[Fault("cut", 0, 0.5)])
        items = corpus(12, seed=23)
        with FaultyProxy("127.0.0.1", server.port, schedule) as proxy:
            client = ServiceClient(proxy.url, retries=4, backoff=0.02)
            ids = client.intern_many(items)
            assert client.counters["retries"] >= 1
        # Same ids as asking the server directly: one batch, one intern.
        assert ids == ServiceClient(server.url).intern_many(items)

    def test_latency_injection_delays_but_answers(self, server):
        schedule = FaultSchedule(events=[Fault("delay", 0, 0.2)])
        with FaultyProxy("127.0.0.1", server.port, schedule) as proxy:
            client = ServiceClient(proxy.url, retries=0)
            start = time.monotonic()
            assert client.health()["ok"] is True
            assert time.monotonic() - start >= 0.2

    def test_seeded_run_bit_identical_to_direct(self, server):
        """The chaos harness's core gate, in miniature."""
        schedule = FaultSchedule.from_seed(4242, connections=30)
        truth = ServiceClient(server.url).hash_corpus(corpus(40, seed=9))
        with FaultyProxy("127.0.0.1", server.port, schedule) as proxy:
            client = ServiceClient(
                proxy.url, retries=8, backoff=0.02, deadline=30.0
            )
            got = []
            for start in range(0, 40, 5):
                got.extend(client.hash_corpus(corpus(40, seed=9)[start : start + 5]))
            assert got == truth
            assert client.counters["failures"] == 0


class TestProcessReaper:
    def test_kills_named_process_at_batch(self):
        schedule = FaultSchedule.from_seed(
            1, connections=0, kill_target="victim", kill_after_batch=2
        )
        reaper = ProcessReaper(schedule)
        victim = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            reaper.register("victim", victim)
            assert reaper.after_batch(0) is None
            assert reaper.after_batch(1) is None
            event = reaper.after_batch(2)
            assert event is not None and event.kind == "kill"
            assert victim.poll() is not None  # SIGKILLed, reaped
            assert reaper.killed == ["victim"]
            # Firing again is a no-op: one kill per target.
            assert reaper.after_batch(2) is None
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
