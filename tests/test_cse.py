"""Tests for common subexpression elimination (the paper's motivating
transformation).  The headline checks: the paper's intro examples come
out exactly as printed, and evaluation results are preserved on closed
arithmetic programs.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.cse import CSEResult, class_saving, cse
from repro.core.combiners import HashCombiners
from repro.core.equivalence import equivalence_classes
from repro.lang.alpha import alpha_equivalent
from repro.lang.evaluator import evaluate
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.names import binder_names, free_vars, has_unique_binders
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.traversal import preorder


def arith_expr(rng: random.Random, depth: int, scope: list[str]) -> Expr:
    """A random *closed, total, evaluable* arithmetic expression with
    deliberate repetition (so CSE has something to find)."""
    if depth == 0 or rng.random() < 0.25:
        if scope and rng.random() < 0.6:
            return Var(rng.choice(scope))
        return Lit(rng.randrange(1, 20))
    roll = rng.random()
    if roll < 0.55:
        op = rng.choice(("add", "mul", "sub", "min", "max"))
        left = arith_expr(rng, depth - 1, scope)
        # bias towards repeated operands: reuse an identical subtree
        if rng.random() < 0.4:
            right = arith_expr(rng, depth - 1, scope)
        else:
            right = arith_expr(rng, depth - 1, scope)
            left = right if rng.random() < 0.3 else left
        return App(App(Var(op), left), right)
    if roll < 0.8:
        binder = f"t{rng.randrange(10**6)}"
        bound = arith_expr(rng, depth - 1, scope)
        body = arith_expr(rng, depth - 1, scope + [binder])
        return Let(binder, bound, body)
    # immediately-applied lambda (stays total under CBV)
    binder = f"l{rng.randrange(10**6)}"
    body = arith_expr(rng, depth - 1, scope + [binder])
    arg = arith_expr(rng, depth - 1, scope)
    return App(Lam(binder, body), arg)


class TestPaperExamples:
    def test_intro_example_1(self):
        result = cse(parse("(a + (v + 7)) * (v + 7)"))
        assert pretty(result.expr) == "let cse0 = v + 7 in (a + cse0) * cse0"

    def test_intro_example_2_alpha_equivalent_lets(self):
        e = parse("(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)")
        result = cse(e)
        text = pretty(result.expr)
        assert text.startswith("let cse0 = let ")
        assert text.count("exp z") == 1  # the let-bound term now appears once

    def test_intro_example_3_lambdas(self):
        result = cse(parse(r"foo (\x. x + 7) (\y. y + 7)"))
        assert pretty(result.expr) == "let cse0 = \\x. x + 7 in foo cse0 cse0"

    def test_section_2_4_under_different_binders(self):
        # \t. foo (\x.x+t) (\y.\x.x+t)  ~>  \t. let h = \x.x+t in foo h (\y. h)
        e = parse(r"\t. foo (\x. x + t) (\y. \x2. x2 + t)")
        result = cse(e)
        text = pretty(result.expr)
        assert text.count("+ t") == 1
        assert len(result.rounds) == 1

    def test_section_2_2_no_false_positive(self):
        # the two x+2 are unrelated; unique-binder preprocessing must
        # prevent them being shared.
        e = parse("foo (let x = bar in x + 2) (let x = pub in x + 2)")
        result = cse(e)
        assert len(result.rounds) == 0
        assert result.final_size == result.original_size


class TestSoundness:
    @pytest.mark.parametrize("seed", range(25))
    def test_semantics_preserved_on_closed_programs(self, seed):
        rng = random.Random(seed)
        e = arith_expr(rng, depth=5, scope=[])
        expected = evaluate(e)
        result = cse(e)
        assert evaluate(result.expr) == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_binders_stay_unique(self, seed):
        rng = random.Random(100 + seed)
        e = arith_expr(rng, depth=5, scope=[])
        result = cse(e)
        assert has_unique_binders(result.expr)

    def test_free_variables_preserved(self):
        e = parse("(a + (v + 7)) * (v + 7)")
        result = cse(e)
        assert free_vars(result.expr) == free_vars(e)

    def test_open_lambdas_share_at_correct_scope(self):
        e = parse(r"\t. foo (\x. x + t) (\y2. \x2. x2 + t)")
        result = cse(e)
        out = result.expr
        # the new let must be INSIDE \t (t is free in the shared term)
        assert out.kind == "Lam" and out.binder == "t"
        lets = [n for n in preorder(out) if n.kind == "Let"]
        assert len(lets) == 1

    def test_no_profitable_class_is_noop(self):
        e = parse("a + b")
        result = cse(e)
        assert result.rounds == [] and result.expr is not None


class TestProgress:
    def test_size_strictly_decreases_per_round(self):
        e = parse("(g (v + 7 * w)) + (g (v + 7 * w))")
        result = cse(e)
        assert result.rounds
        assert result.final_size < result.original_size
        assert result.nodes_saved == sum(r.saving for r in result.rounds)

    def test_class_saving_formula(self):
        e = parse("g (v + 7) (v + 7)")
        cls = equivalence_classes(e, min_size=3)[0]
        # k=2 occurrences of s=5 nodes: (2-1)*(5-1) - 2 = 2
        assert class_saving(cls) == 2

    def test_unprofitable_small_class_skipped(self):
        # k=2, s=3 => saving 0: must not rewrite.
        e = parse("g (f x) (f x)")
        result = cse(e, min_size=3)
        assert result.rounds == []

    def test_max_rounds_respected(self):
        e = parse("(g (v + 7)) + (g (v + 7)) + (h (w + 9)) + (h (w + 9))")
        result = cse(e, max_rounds=1)
        assert len(result.rounds) == 1

    def test_nested_repetition_multiple_rounds(self):
        e = parse(
            "(p (u + 1) (u + 1)) * (p (u + 1) (u + 1))"
        )
        result = cse(e)
        assert len(result.rounds) >= 1
        assert evaluate(result.expr, {"p": _prim_pair(), "u": 3}) == evaluate(
            e, {"p": _prim_pair(), "u": 3}
        )


def _prim_pair():
    from repro.lang.evaluator import PrimValue

    return PrimValue("p", 2, lambda a, b: a * 100 + b)


class TestConfiguration:
    def test_min_size_filter(self):
        e = parse("(g (v + 7)) + (g (v + 7))")
        assert cse(e, min_size=50).rounds == []

    def test_custom_binder_prefix(self):
        result = cse(parse("(a + (v + 7)) * (v + 7)"), binder_prefix="w")
        assert "w0" in binder_names(result.expr)

    def test_small_hash_width_with_verification(self):
        # even at 8 bits, verify_classes keeps the pass sound.
        rng = random.Random(7)
        e = arith_expr(rng, depth=5, scope=[])
        expected = evaluate(e)
        combiners = HashCombiners(bits=8, seed=3)
        result = cse(e, combiners=combiners, verify_classes=True)
        assert evaluate(result.expr) == expected

    def test_uniquifies_on_demand(self):
        e = parse(r"(\x. x) (\x. x)")
        result = cse(e, min_size=1)
        assert has_unique_binders(result.expr)

    def test_result_repr(self):
        result = cse(parse("(a + (v + 7)) * (v + 7)"))
        assert isinstance(result, CSEResult)
        assert result.final_size == result.expr.size
