"""Tests for :class:`repro.api.AsyncSession` (ISSUE 5).

The contract: async results == serial results bit-for-bit, concurrent
corpus jobs interleave safely, cancellation leaves the session (and its
worker pools) reusable, and in-flight jobs are bounded.
"""

import asyncio
import random
import threading

import pytest

from repro.api import AsyncSession, HashRequest, Session
from repro.api.backends import _ALIASES, BACKENDS, FunctionBackend, register_backend
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.parser import parse


def mixed_corpus(n_items: int, seed: int = 9, size: int = 40):
    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.2:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(size, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


@pytest.fixture(scope="module")
def corpus():
    return mixed_corpus(120)


@pytest.fixture(scope="module")
def expected(corpus):
    return [alpha_hash_all(e).root_hash for e in corpus]


class TestAsyncBitIdentity:
    def test_hash_corpus_async_equals_serial(self, corpus, expected):
        async def main():
            async with AsyncSession() as asession:
                return await asession.hash_corpus_async(corpus)

        assert asyncio.run(main()) == expected

    def test_async_pool_plan_equals_serial(self, corpus, expected):
        async def main():
            async with AsyncSession(workers=2) as asession:
                return await asession.hash_corpus_async(corpus)

        assert asyncio.run(main()) == expected

    def test_hash_async_single(self):
        expr = parse(r"\x. x + 7")

        async def main():
            async with AsyncSession() as asession:
                return await asession.hash_async(expr)

        assert asyncio.run(main()) == alpha_hash_all(expr).root_hash

    def test_intern_many_async_equals_serial(self, corpus):
        reference = Session().intern_many(corpus)

        async def main():
            async with AsyncSession() as asession:
                return await asession.intern_many_async(corpus)

        assert asyncio.run(main()) == reference

    def test_engine_hints_flow_through(self, corpus, expected):
        async def main():
            async with AsyncSession() as asession:
                tree = await asession.hash_corpus_async(corpus, engine="tree")
                arena = await asession.hash_corpus_async(corpus, engine="arena")
                return tree, arena

        tree, arena = asyncio.run(main())
        assert tree == expected and arena == expected


class TestConcurrentJobs:
    def test_gathered_jobs_all_match(self, expected, corpus):
        corpora = [corpus, list(reversed(corpus)), corpus[:60]]
        wanted = [expected, list(reversed(expected)), expected[:60]]

        async def main():
            async with AsyncSession(max_in_flight=3) as asession:
                return await asyncio.gather(
                    *(asession.hash_corpus_async(c) for c in corpora)
                )

        assert asyncio.run(main()) == wanted

    def test_shared_session_store_accumulates(self, corpus):
        session = Session()

        async def main():
            async with AsyncSession(session) as asession:
                await asyncio.gather(
                    asession.intern_many_async(corpus[:60]),
                    asession.intern_many_async(corpus[60:]),
                )

        asyncio.run(main())
        # The borrowed session survives the async wrapper's close().
        assert len(session.store) > 0
        assert session.hash_corpus(corpus) == [
            alpha_hash_all(e).root_hash for e in corpus
        ]

    def test_bounded_in_flight(self, corpus):
        """At most max_in_flight jobs touch the session at once."""
        active = 0
        peak = 0
        gate = threading.Lock()

        def slow_hash_all(expr, combiners=None):
            nonlocal active, peak
            with gate:
                active += 1
                peak = max(peak, active)
            try:
                return alpha_hash_all(expr, combiners)
            finally:
                with gate:
                    active -= 1

        name = "_test_slow_backend"
        register_backend(
            FunctionBackend(
                name=name,
                label="slow test backend",
                kind="plugin",
                section="test",
                store_backed=False,
                run=slow_hash_all,
            )
        )
        try:

            async def main():
                async with AsyncSession(
                    backend=name, use_store=False, max_in_flight=2
                ) as asession:
                    jobs = [
                        asession.hash_corpus_async(corpus[:10])
                        for _ in range(6)
                    ]
                    await asyncio.gather(*jobs)

            asyncio.run(main())
            assert peak <= 2
        finally:
            BACKENDS.pop(name, None)
            _ALIASES.pop(name, None)


class TestCancellation:
    def test_cancelled_pending_job_never_runs(self, corpus, expected):
        """Cancel jobs queued behind max_in_flight=1; the session and its
        pools stay reusable and later jobs still agree with serial."""

        async def main():
            async with AsyncSession(max_in_flight=1) as asession:
                first = asyncio.ensure_future(
                    asession.hash_corpus_async(corpus)
                )
                pending = [
                    asyncio.ensure_future(asession.hash_corpus_async(corpus))
                    for _ in range(3)
                ]
                await asyncio.sleep(0)  # let the first job enter the bridge
                for job in pending:
                    job.cancel()
                results = await asyncio.gather(
                    first, *pending, return_exceptions=True
                )
                assert results[0] == expected
                assert all(
                    isinstance(r, asyncio.CancelledError) for r in results[1:]
                )
                # The wrapper is still usable after cancellations.
                return await asession.hash_corpus_async(corpus)

        assert asyncio.run(main()) == expected

    def test_pool_reusable_after_cancellation(self, corpus, expected):
        """A pooled session keeps its persistent WorkerPool working
        across a cancelled job."""
        session = Session(workers=2)
        try:

            async def main():
                async with AsyncSession(session, max_in_flight=1) as asession:
                    running = asyncio.ensure_future(
                        asession.hash_corpus_async(corpus)
                    )
                    victim = asyncio.ensure_future(
                        asession.hash_corpus_async(corpus)
                    )
                    await asyncio.sleep(0)
                    victim.cancel()
                    first, second = await asyncio.gather(
                        running, victim, return_exceptions=True
                    )
                    assert first == expected
                    assert isinstance(second, asyncio.CancelledError)
                    return await asession.hash_corpus_async(corpus)

            assert asyncio.run(main()) == expected
            # ...and the synchronous session still works afterwards.
            assert session.execute(HashRequest(corpus)) == expected
        finally:
            session.close()


class TestLifecycle:
    def test_owned_session_closes_with_wrapper(self):
        asession = AsyncSession(workers=2)
        inner = asession.session
        asession.close()
        asession.close()  # idempotent
        assert inner._pools == {}

    def test_borrow_xor_kwargs(self):
        with pytest.raises(TypeError, match="not both"):
            AsyncSession(Session(), workers=2)

    def test_max_in_flight_validated(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AsyncSession(max_in_flight=0)

    def test_apps_accept_async_session(self):
        from repro.apps.cse import cse

        from repro.apps._session_args import resolve_session

        expr = parse("(a + (v + 7)) * (v + 7)")
        with AsyncSession() as asession:
            # The shared resolver unwraps to the inner session's pieces.
            combiners, store = resolve_session(asession, None, None)
            assert combiners is asession.session.combiners
            assert store is asession.session.store
            result = cse(expr, session=asession)
        assert result.final_size <= expr.size
