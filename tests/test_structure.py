"""Unit tests for expression structures and their hash recipes."""

from repro.core.combiners import HashCombiners
from repro.core.position_tree import PTHere, PTJoin
from repro.core.structure import (
    SApp,
    SLam,
    SLet,
    SLit,
    SVar,
    hash_structure,
    sapp_hash,
    slam_hash,
    slet_hash,
    slit_hash,
    structure_equal,
    structure_tag,
    svar_hash,
    top_hash,
)


class TestSizesAndTags:
    def test_sizes(self):
        assert SVar.size == 1
        assert SLit(3).size == 1
        assert SLam(None, SVar).size == 2
        assert SApp(True, SVar, SVar).size == 3
        assert SLet(None, True, SVar, SVar).size == 3

    def test_tag_is_size(self):
        assert structure_tag(17) == 17

    def test_tag_property_strictly_decreasing_into_substructures(self):
        # the Section 4.8 requirement: a structure's tag differs from all
        # of its substructures' tags.
        inner = SApp(True, SVar, SVar)
        outer = SLam(None, inner)
        assert structure_tag(outer.size) != structure_tag(inner.size)
        assert structure_tag(inner.size) != structure_tag(SVar.size)


class TestEquality:
    def test_svar_singleton(self):
        assert structure_equal(SVar, SVar)

    def test_lit_values_and_types(self):
        assert structure_equal(SLit(3), SLit(3))
        assert not structure_equal(SLit(3), SLit(4))
        assert not structure_equal(SLit(1), SLit(1.0))

    def test_lam_pos_matters(self):
        a = SLam(PTHere, SVar)
        b = SLam(PTHere, SVar)
        c = SLam(None, SVar)
        assert structure_equal(a, b)
        assert not structure_equal(a, c)

    def test_app_flag_matters(self):
        a = SApp(True, SVar, SVar)
        b = SApp(False, SVar, SVar)
        assert not structure_equal(a, b)

    def test_let_fields(self):
        a = SLet(PTHere, True, SVar, SVar)
        b = SLet(PTHere, True, SVar, SVar)
        c = SLet(None, True, SVar, SVar)
        d = SLet(PTHere, False, SVar, SVar)
        assert structure_equal(a, b)
        assert not structure_equal(a, c)
        assert not structure_equal(a, d)

    def test_kind_mismatch(self):
        assert not structure_equal(SVar, SLit(0))

    def test_deep(self):
        a = SVar
        b = SVar
        for _ in range(20_000):
            a = SLam(None, a)
            b = SLam(None, b)
        assert structure_equal(a, b)


class TestHashing:
    def setup_method(self):
        self.c = HashCombiners(seed=77)

    def test_svar(self):
        assert hash_structure(self.c, SVar) == svar_hash(self.c)

    def test_slit(self):
        assert hash_structure(self.c, SLit(42)) == slit_hash(self.c, 42)

    def test_slam_composition(self):
        s = SLam(PTHere, SVar)
        from repro.core.position_tree import pt_here_hash

        expected = slam_hash(self.c, 2, pt_here_hash(self.c), svar_hash(self.c))
        assert hash_structure(self.c, s) == expected

    def test_slam_nothing_pos(self):
        a = hash_structure(self.c, SLam(PTHere, SVar))
        b = hash_structure(self.c, SLam(None, SVar))
        assert a != b

    def test_sapp_flag_in_hash(self):
        v = svar_hash(self.c)
        assert sapp_hash(self.c, 3, True, v, v) != sapp_hash(self.c, 3, False, v, v)

    def test_sapp_order_in_hash(self):
        lit = slit_hash(self.c, 1)
        v = svar_hash(self.c)
        assert sapp_hash(self.c, 3, True, v, lit) != sapp_hash(self.c, 3, True, lit, v)

    def test_slet_composition(self):
        s = SLet(PTHere, False, SVar, SLit(1))
        from repro.core.position_tree import pt_here_hash

        expected = slet_hash(
            self.c, 3, pt_here_hash(self.c), False, svar_hash(self.c), slit_hash(self.c, 1)
        )
        assert hash_structure(self.c, s) == expected

    def test_size_salts_hash(self):
        # same children, structurally impossible but recipe-level check:
        v = svar_hash(self.c)
        assert slam_hash(self.c, 2, None, v) != slam_hash(self.c, 3, None, v)

    def test_top_hash_pairs(self):
        assert top_hash(self.c, 1, 2) != top_hash(self.c, 2, 1)

    def test_join_pos_in_structure_hash(self):
        a = SLam(PTJoin(3, None, PTHere), SApp(True, SVar, SVar))
        b = SLam(PTJoin(4, None, PTHere), SApp(True, SVar, SVar))
        assert hash_structure(self.c, a) != hash_structure(self.c, b)

    def test_deep_structure(self):
        s = SVar
        for _ in range(20_000):
            s = SLam(None, s)
        assert hash_structure(self.c, s) is not None
