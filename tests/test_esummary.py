"""Tests for Step-1 e-summaries: the paper's central correctness claim.

"Two e-summaries are equal if and only if the expressions from whence
they came are alpha-equivalent" -- tested for both the naive (4.6) and
smaller-subtree (4.8) summarisers, on hand-picked cases and random
pairs, including the alpha-renaming direction.
"""

from hypothesis import given

from repro.core.esummary import (
    esummary_equal,
    summarise_all_naive,
    summarise_all_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.gen.random_exprs import alpha_rename
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.parser import parse

from strategies import exprs

import pytest

SUMMARISERS = [summarise_naive, summarise_tagged]


@pytest.mark.parametrize("summarise", SUMMARISERS)
class TestEqualityMatchesAlpha:
    def test_alpha_renamed_lambdas(self, summarise):
        a = summarise(parse(r"\x. x + y"))
        b = summarise(parse(r"\p. p + y"))
        assert esummary_equal(a, b)

    def test_free_variable_names_matter(self, summarise):
        a = summarise(parse(r"\x. x + y"))
        b = summarise(parse(r"\q. q + z"))
        assert not esummary_equal(a, b)

    def test_structure_difference(self, summarise):
        a = summarise(parse(r"\x. x (x x)"))
        b = summarise(parse(r"\x. (x x) x"))
        assert not esummary_equal(a, b)

    def test_add_x_y_vs_add_x_x(self, summarise):
        # Same structure ("imagine every free variable replaced by
        # <hole>"), distinguished only by the variable map.
        a = summarise(parse("add x y"))
        b = summarise(parse("add x x"))
        assert not esummary_equal(a, b)

    def test_binder_not_occurring(self, summarise):
        a = summarise(parse(r"\x. y"))
        b = summarise(parse(r"\q. y"))
        c = summarise(parse(r"\x. x"))
        assert esummary_equal(a, b)
        assert not esummary_equal(a, c)

    def test_lets(self, summarise):
        a = summarise(parse("let u = exp z in u + 7"))
        b = summarise(parse("let w = exp z in w + 7"))
        assert esummary_equal(a, b)

    def test_lits(self, summarise):
        assert esummary_equal(summarise(Lit(3)), summarise(Lit(3)))
        assert not esummary_equal(summarise(Lit(3)), summarise(Lit(4)))
        assert not esummary_equal(summarise(Lit(1)), summarise(Lit(True)))

    @given(exprs(max_size=50))
    def test_invariant_under_renaming(self, summarise, e):
        assert esummary_equal(summarise(e), summarise(alpha_rename(e)))

    @given(exprs(max_size=30), exprs(max_size=30))
    def test_equality_iff_alpha(self, summarise, e1, e2):
        assert esummary_equal(summarise(e1), summarise(e2)) == alpha_equivalent(
            e1, e2
        )


class TestVarMapContents:
    def test_root_map_is_free_vars(self):
        e = parse(r"\x. x + y")
        for summarise in SUMMARISERS:
            summary = summarise(e)
            assert set(summary.varmap.entries) == {"add", "y"}

    def test_closed_expression_has_empty_map(self):
        e = parse(r"\x. \y. x y")
        for summarise in SUMMARISERS:
            assert len(summarise(e).varmap) == 0


class TestPerNodeSummaries:
    def test_all_nodes_covered(self):
        e = parse(r"(\x. x) (\y. y)")
        for summarise_all in (summarise_all_naive, summarise_all_tagged):
            summaries = summarise_all(e)
            assert len(summaries) == e.size

    def test_subterm_summaries_equal_iff_alpha(self):
        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        lam1 = e.fn.arg
        lam2 = e.arg
        for summarise_all in (summarise_all_naive, summarise_all_tagged):
            summaries = summarise_all(e)
            assert esummary_equal(summaries[id(lam1)], summaries[id(lam2)])

    def test_shadowed_name_still_correct(self):
        # Shadowing is allowed at the summary level (hashing stays
        # alpha-correct even without the unique-binder preprocessing).
        e = parse(r"\x. x (\x2. x2)")
        shadowed = parse(r"\x. x (\x. x)")
        for summarise in SUMMARISERS:
            assert esummary_equal(summarise(e), summarise(shadowed))


class TestDeep:
    def test_deep_lambda_chain(self):
        e1, e2 = Var("free"), Var("free")
        for i in range(5_000):
            e1 = Lam(f"a{i}", e1)
            e2 = Lam(f"b{i}", e2)
        for summarise in SUMMARISERS:
            assert esummary_equal(summarise(e1), summarise(e2))
