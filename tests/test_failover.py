"""Tests for replica failover and fault tolerance (ISSUE 8).

A shard's primary dying must not lose acknowledged classes or take the
cluster down: reads fail over to an in-sync replica immediately,
writes resume after promotion (bounded by ``down_ttl``), circuit
breakers half-open via health probes instead of serving stale 503s,
and client deadlines bound the total time any of this may take.
"""

import random
import time

import pytest

from repro.cluster import ClusterCoordinator, ClusterTopology, TopologyError
from repro.gen.random_exprs import random_expr
from repro.lang.sexpr import to_wire
from repro.service import ReproServer, ServiceClient, ServiceError


def mixed_corpus(n_items, seed=13, size=40):
    rng = random.Random(seed)
    return [
        random_expr(size, rng=rng, p_let=0.2, p_lit=0.2)
        for _ in range(n_items)
    ]


def wire_corpus(n_items, seed=13):
    return [to_wire(e) for e in mixed_corpus(n_items, seed=seed)]


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def replicated_cluster(shard_count=1, **coordinator_kwargs):
    """shard_count primaries, one follower replica each, a coordinator."""
    primaries = [
        ReproServer(port=0, shard_id=i, shard_count=shard_count).start()
        for i in range(shard_count)
    ]
    replicas = [
        ReproServer(
            port=0,
            shard_id=i,
            shard_count=shard_count,
            follow=primaries[i].url,
            poll_interval=0.05,
        ).start()
        for i in range(shard_count)
    ]
    coordinator_kwargs.setdefault("retries", 1)
    coordinator_kwargs.setdefault("backoff", 0.05)
    coordinator_kwargs.setdefault("down_ttl", 0.4)
    coordinator_kwargs.setdefault("probe_interval", 0.1)
    coordinator = ClusterCoordinator(
        [node.url for node in primaries],
        replicas={i: [replicas[i].url] for i in range(shard_count)},
        port=0,
        **coordinator_kwargs,
    ).start()
    return coordinator, primaries, replicas


def synced(primary, replica):
    return replica.session.store.version >= primary.session.store.version


class TestReplicaTopology:
    def test_replicas_ride_along(self):
        topo = ClusterTopology(
            ["http://a:1", "http://b:2"],
            replicas={0: ["http://a2:1"], 1: ["http://b2:2", "http://b3:2"]},
        )
        assert topo.num_shards == 2
        assert topo.num_replicas == 3
        assert topo.replicas_of(1) == ("http://b2:2", "http://b3:2")
        assert topo.nodes_of(0) == ("http://a:1", "http://a2:1")
        # Ownership is a function of shard count alone.
        assert topo.owner_of(12345) == 12345 % 2

    def test_replica_validation(self):
        with pytest.raises(TopologyError, match="duplicate"):
            ClusterTopology(["http://a:1"], replicas={0: ["http://a:1"]})
        with pytest.raises(TopologyError, match="http"):
            ClusterTopology(["http://a:1"], replicas={0: ["ftp://r:1"]})
        with pytest.raises(TopologyError, match="shard"):
            ClusterTopology(["http://a:1"], replicas={3: ["http://r:1"]})
        with pytest.raises(TopologyError, match="group"):
            ClusterTopology(["http://a:1"], replicas=[[], []])


class TestFollowerRole:
    def test_follower_tails_primary(self):
        primary = ReproServer(port=0).start()
        follower = ReproServer(
            port=0, follow=primary.url, poll_interval=0.05
        ).start()
        try:
            client = ServiceClient(primary.url)
            client.intern_many(mixed_corpus(30, seed=3))
            assert wait_until(lambda: synced(primary, follower))
            a = ServiceClient(primary.url).health(checksum=True)
            b = ServiceClient(follower.url).health(checksum=True)
            assert a["content_checksum"] == b["content_checksum"]
            assert b["role"] == "follower"
            assert b["follower"]["entries_applied"] > 0
        finally:
            follower.close()
            primary.close()

    def test_follower_survives_primary_death(self):
        primary = ReproServer(port=0).start()
        follower = ReproServer(
            port=0, follow=primary.url, poll_interval=0.05
        ).start()
        try:
            ServiceClient(primary.url).intern_many(mixed_corpus(10, seed=5))
            assert wait_until(lambda: synced(primary, follower))
            version = follower.session.store.version
            primary.close()
            time.sleep(0.15)  # a few failed polls
            health = ServiceClient(follower.url).health()
            assert health["ok"] is True
            assert health["version"] == version
            assert health["follower"]["last_error"]
        finally:
            follower.close()


class TestReadFailover:
    def test_reads_survive_dead_primary(self):
        coordinator, primaries, replicas = replicated_cluster()
        try:
            client = ServiceClient(coordinator.url, retries=2, backoff=0.05)
            docs = wire_corpus(20)
            client.intern_wire(docs)
            assert wait_until(lambda: synced(primaries[0], replicas[0]))
            primaries[0].close()
            # Health, stats and hashing all keep answering.
            assert client.health()["ok"] is True
            stats = client.stats()
            assert stats["entries"] > 0
            reply = client.hash_wire(docs)
            assert len(reply["hashes"]) == len(docs)
            domains = client.metrics()["failure_domains"]
            assert domains["down_shards"] == []
            assert domains["breaker_opens"] >= 1
        finally:
            coordinator.close()
            for node in primaries + replicas:
                node.close()

    def test_snapshot_survives_dead_primary(self):
        coordinator, primaries, replicas = replicated_cluster()
        try:
            client = ServiceClient(coordinator.url, retries=2, backoff=0.05)
            client.intern_wire(wire_corpus(15))
            assert wait_until(lambda: synced(primaries[0], replicas[0]))
            entries_before = client.stats()["entries"]
            primaries[0].close()
            data = client.fetch_snapshot()
            from repro.store import snapshot_from_bytes

            store, _header = snapshot_from_bytes(data)
            assert len(store) == entries_before
        finally:
            coordinator.close()
            for node in primaries + replicas:
                node.close()


class TestWriteFailover:
    def test_promotion_after_down_ttl(self):
        coordinator, primaries, replicas = replicated_cluster()
        try:
            client = ServiceClient(
                coordinator.url, retries=6, backoff=0.1, deadline=20.0
            )
            docs = wire_corpus(30)
            client.intern_wire(docs[:15])
            assert wait_until(lambda: synced(primaries[0], replicas[0]))
            primaries[0].close()
            # Writes resume once the replica is promoted; the client's
            # bounded retries absorb the (<= down_ttl) 503 window.
            reply = client.intern_wire(docs[15:])
            assert len(reply["ids"]) == 15
            domains = client.metrics()["failure_domains"]
            shard = domains["shards"][0]
            assert shard["promoted"] is True
            assert shard["active"] == replicas[0].url
            assert domains["promotions"] == 1
            # The promoted store holds both halves.
            assert client.stats()["entries"] == len(
                replicas[0].session.store
            )
        finally:
            coordinator.close()
            for node in primaries + replicas:
                node.close()

    def test_unreplicated_shard_still_503s(self):
        node = ReproServer(port=0, shard_id=0, shard_count=1).start()
        coordinator = ClusterCoordinator(
            [node.url], port=0, retries=0, down_ttl=0.3, probe_interval=0.05
        ).start()
        try:
            client = ServiceClient(coordinator.url, retries=0)
            docs = wire_corpus(5)
            client.intern_wire(docs[:2])
            node.close()
            time.sleep(0.35)  # past down_ttl: promotion would fire if possible
            with pytest.raises(ServiceError) as excinfo:
                client.intern_wire(docs[2:])
            assert excinfo.value.status == 503
        finally:
            coordinator.close()

    def test_promotion_requires_in_sync_replica(self):
        """A replica behind the acked version must not be promoted."""
        coordinator, primaries, replicas = replicated_cluster(down_ttl=0.2)
        try:
            client = ServiceClient(coordinator.url, retries=0)
            # Pause the follower loop so the replica stays stale.
            replicas[0]._follower.stop_event.set()
            client.intern_wire(wire_corpus(10))
            primaries[0].close()
            # Every write from here fails 503; once the breaker has
            # watched the primary stay down past down_ttl, the refusal
            # names the stale replica (promotion considered, rejected).
            message = ""
            deadline = time.monotonic() + 5
            while "caught up" not in message:
                assert time.monotonic() < deadline, message
                with pytest.raises(ServiceError) as excinfo:
                    client.intern_wire(wire_corpus(5, seed=99))
                assert excinfo.value.status == 503
                message = str(excinfo.value)
                time.sleep(0.1)
            domains = client.metrics()["failure_domains"]
            assert domains["shards"][0]["promoted"] is False
        finally:
            coordinator.close()
            for node in replicas:
                node.close()


class TestCircuitBreaker:
    def test_probe_on_touch_beats_down_ttl(self):
        """A node back before the TTL expires serves again on the next
        touch -- the liveness cache must not pin it down for the TTL."""
        shard_count = 1
        node = ReproServer(port=0, shard_id=0, shard_count=shard_count)
        node.start()
        coordinator = ClusterCoordinator(
            [node.url],
            port=0,
            retries=0,
            down_ttl=60.0,  # deliberately huge: only the probe can revive
            probe_interval=0.05,
        ).start()
        try:
            client = ServiceClient(coordinator.url, retries=0)
            docs = wire_corpus(6)
            client.intern_wire(docs[:3])
            # Simulate a blip: mark the node down without killing it.
            shard_node = coordinator.groups[0].nodes[0]
            coordinator._mark_down(shard_node, RuntimeError("blip"))
            assert shard_node.breaker_opens == 1
            time.sleep(0.06)  # one probe interval, a fraction of the TTL
            reply = client.intern_wire(docs[3:])
            assert len(reply["ids"]) == 3
            assert shard_node.down_until == 0.0
        finally:
            coordinator.close()
            node.close()

    def test_breaker_open_counts_are_monotone(self):
        coordinator, primaries, replicas = replicated_cluster()
        try:
            client = ServiceClient(coordinator.url, retries=2, backoff=0.05)
            client.intern_wire(wire_corpus(8))
            assert wait_until(lambda: synced(primaries[0], replicas[0]))
            primaries[0].close()
            client.health()
            client.hash_wire(wire_corpus(4, seed=2))
            domains = client.metrics()["failure_domains"]
            node_entry = domains["shards"][0]["nodes"][0]
            assert node_entry["down"] is True
            assert node_entry["breaker_opens"] >= 1
            assert node_entry["role"] == "primary"
        finally:
            coordinator.close()
            for node in primaries + replicas:
                node.close()


class TestClientDeadline:
    def test_deadline_bounds_total_retry_time(self):
        client = ServiceClient(
            "http://127.0.0.1:9",  # nothing listens on the discard port
            retries=50,
            backoff=0.05,
            deadline=0.5,
        )
        start = time.monotonic()
        with pytest.raises(ServiceError, match="deadline"):
            client.health()
        elapsed = time.monotonic() - start
        assert elapsed < 2.0  # 50 retries would take far longer
        assert client.counters["deadline_exhausted"] == 1
        assert client.counters["failures"] == 1

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            ServiceClient("http://127.0.0.1:9", deadline=0.0)

    def test_counters_track_retries(self):
        with ReproServer(port=0) as server:
            client = ServiceClient(server.url, retries=2)
            client.health()
            assert client.counters["requests"] == 1
            assert client.counters["retries"] == 0
            assert client.counters["failures"] == 0


class TestBudget:
    def test_budget_validation(self):
        with pytest.raises(ValueError, match="budget"):
            ClusterCoordinator(["http://a:1"], port=0, budget=-1.0)

    def test_exhausted_budget_is_a_bounded_503(self):
        node = ReproServer(port=0, shard_id=0, shard_count=1).start()
        coordinator = ClusterCoordinator(
            [node.url],
            port=0,
            retries=0,
            down_ttl=5.0,
            probe_interval=10.0,  # no probes inside the window
            budget=0.3,
        ).start()
        try:
            client = ServiceClient(coordinator.url, retries=0)
            client.intern_wire(wire_corpus(3))
            node.close()
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.intern_wire(wire_corpus(3, seed=8))
            assert excinfo.value.status == 503
            assert time.monotonic() - start < 3.0
        finally:
            coordinator.close()
