"""Tests for the expression zipper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.expr import App, Lam, Let, Lit, Var, syntactic_eq
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.traversal import preorder_with_paths, replace_at
from repro.lang.zipper import Zipper, ZipperError

from strategies import exprs


def sample():
    return parse(r"let a = f x in \y. a + y")


class TestNavigation:
    def test_root(self):
        z = Zipper.from_expr(sample())
        assert z.is_root and z.path == () and z.depth == 0

    def test_down_up_identity(self):
        e = sample()
        z = Zipper.from_expr(e).down(1).up()
        assert z.focus is e

    def test_down_reaches_children(self):
        e = sample()
        z = Zipper.from_expr(e)
        assert z.down(0).focus is e.bound
        assert z.down(1).focus is e.body

    def test_path_accumulates(self):
        z = Zipper.from_expr(sample()).down(1).down(0)
        assert z.path == (1, 0)

    def test_at_path(self):
        e = sample()
        z = Zipper.at_path(e, (1, 0))
        assert z.focus is e.body.body

    def test_siblings(self):
        e = parse("f x")
        z = Zipper.from_expr(e).down(0)
        assert z.right().focus is e.arg
        assert z.right().left().focus is e.fn

    def test_top_from_deep(self):
        e = sample()
        z = Zipper.at_path(e, (1, 0, 0, 1))
        assert z.top().focus is e

    def test_invalid_moves(self):
        z = Zipper.from_expr(sample())
        with pytest.raises(ZipperError):
            z.up()
        with pytest.raises(ZipperError):
            z.left()
        with pytest.raises(ZipperError):
            z.down(5)
        with pytest.raises(ZipperError):
            Zipper.from_expr(Var("x")).down(0)

    @given(exprs(max_size=50), st.integers(0, 10**6))
    def test_at_path_matches_traversal(self, e, pick):
        paths = [p for p, _ in preorder_with_paths(e)]
        path = paths[pick % len(paths)]
        z = Zipper.at_path(e, path)
        assert z.path == path


class TestScope:
    def test_binders_in_scope(self):
        e = parse(r"let a = f x in \y. a + y")
        z = Zipper.at_path(e, (1, 0, 1))  # the `a` occurrence in a + y
        assert z.binders_in_scope() == ["a", "y"]

    def test_let_bound_side_excludes_binder(self):
        e = parse("let a = f x in a")
        z = Zipper.at_path(e, (0,))  # the bound expression
        assert z.binders_in_scope() == []

    def test_root_scope_empty(self):
        assert Zipper.from_expr(sample()).binders_in_scope() == []


class TestEditing:
    def test_replace_and_rebuild(self):
        e = parse("(a + (v + 7)) * (v + 7)")
        z = Zipper.at_path(e, (1,)).replace(parse("q"))
        rebuilt = z.to_expr()
        assert pretty(rebuilt) == "(a + (v + 7)) * q"

    def test_edit_matches_replace_at(self):
        e = sample()
        new = Lit(9)
        via_zipper = Zipper.at_path(e, (1, 0)).replace(new).to_expr()
        via_replace = replace_at(e, (1, 0), new)
        assert syntactic_eq(via_zipper, via_replace)

    def test_unchanged_rebuild_shares_everything(self):
        e = sample()
        z = Zipper.at_path(e, (1, 0))
        assert z.to_expr() is e

    def test_off_path_sharing(self):
        e = parse("(f a) (g b)")
        rebuilt = Zipper.at_path(e, (1, 1)).replace(Var("c")).to_expr()
        assert rebuilt.fn is e.fn  # untouched left subtree shared

    def test_modify(self):
        e = parse("f 1")
        z = Zipper.at_path(e, (1,)).modify(lambda lit: Lit(lit.value + 1))
        assert pretty(z.to_expr()) == "f 2"

    def test_multiple_edits(self):
        e = parse("f a b")
        z = Zipper.at_path(e, (0, 1)).replace(Var("x"))
        z = Zipper.at_path(z.to_expr(), (1,)).replace(Var("y"))
        assert pretty(z.to_expr()) == "f x y"

    def test_replace_rejects_non_expr(self):
        with pytest.raises(TypeError):
            Zipper.from_expr(sample()).replace("nope")

    @given(exprs(max_size=50), st.integers(0, 10**6))
    def test_rebuild_equals_replace_at(self, e, pick):
        paths = [p for p, _ in preorder_with_paths(e)]
        path = paths[pick % len(paths)]
        replacement = Lit(42)
        assert syntactic_eq(
            Zipper.at_path(e, path).replace(replacement).to_expr(),
            replace_at(e, path, replacement),
        )


class TestSearch:
    def test_find(self):
        e = parse(r"let a = f x in \y. a + y")
        z = Zipper.from_expr(e).find(lambda n: n.kind == "Lam")
        assert z is not None and z.focus.kind == "Lam"

    def test_find_returns_first_preorder(self):
        e = parse("g 1 2")
        z = Zipper.from_expr(e).find(lambda n: n.kind == "Lit")
        assert z.focus.value == 1

    def test_find_none(self):
        assert Zipper.from_expr(parse("a b")).find(lambda n: n.kind == "Lit") is None

    def test_find_from_subfocus(self):
        e = parse("pair (f 1) (g 2)")
        z = Zipper.at_path(e, (1,)).find(lambda n: n.kind == "Lit")
        assert z.focus.value == 2


class TestIntegrationWithIncremental:
    def test_zipper_paths_feed_incremental_hasher(self):
        from repro.core.hashed import alpha_hash_all
        from repro.core.incremental import IncrementalHasher

        e = parse("(a + (v + 7)) * (v + 7)")
        hasher = IncrementalHasher(e)
        z = Zipper.from_expr(e).find(
            lambda n: n.kind == "App" and n.size == 5 and pretty(n) == "v + 7"
        )
        new = parse("v + 8")
        hasher.replace(z.path, new)
        expected = alpha_hash_all(z.replace(new).to_expr())
        assert hasher.root_hash == expected.root_hash

    def test_deep_navigation(self):
        e = Var("x")
        for i in range(10_000):
            e = Lam(f"v{i}", e)
        z = Zipper.from_expr(e)
        for _ in range(10_000):
            z = z.down(0)
        assert isinstance(z.focus, Var)
        assert z.replace(Lit(1)).to_expr().size == e.size
