"""Tests for let inlining (the CSE inverse)."""

import random

import pytest
from hypothesis import given

from repro.apps.cse import cse
from repro.apps.inline import count_uses, inline_lets
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Lam, Let, Lit, Var
from repro.lang.names import uniquify_binders
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.traversal import preorder

from strategies import exprs


class TestCountUses:
    def test_counts_free_occurrences(self):
        assert count_uses(parse("x + x * x"), "x") == 3
        assert count_uses(parse("y"), "x") == 0

    def test_shadowing_lambda(self):
        assert count_uses(parse(r"x (\x. x)"), "x") == 1

    def test_shadowing_let(self):
        e = Let("x", Var("x"), Var("x"))
        assert count_uses(e, "x") == 1  # only the bound-side occurrence

    def test_nested_shadowing(self):
        e = parse(r"x + (\x. x + (\y. x)) + x")
        assert count_uses(e, "x") == 2


class TestInlineLets:
    def test_single_let(self):
        out = inline_lets(parse("let w = v + 7 in w * w"))
        assert pretty(out) == "(v + 7) * (v + 7)"

    def test_nested_lets(self):
        out = inline_lets(parse("let a = 1 in let b = a + 1 in b * b"))
        assert pretty(out) == "(1 + 1) * (1 + 1)"

    def test_dead_binding_dropped(self):
        out = inline_lets(parse("let unused = f 1 in 42"))
        assert pretty(out) == "42"

    def test_no_lets_is_identity_object(self):
        e = parse(r"\x. x + 1")
        assert inline_lets(e) is e

    def test_let_under_lambda(self):
        out = inline_lets(parse(r"\x. let y = x + 1 in y * y"))
        assert pretty(out) == "\\x. (x + 1) * (x + 1)"

    def test_capture_avoided(self):
        # let y = x in \x. y  -- inlining must not capture the free x
        e = Let("y", Var("x"), Lam("x", Var("y")))
        out = inline_lets(e)
        assert alpha_equivalent(out, Lam("z", Var("x")))


class TestKnobs:
    def test_max_uses(self):
        e = parse("let w = f 1 in w + w + w")
        assert inline_lets(e, max_uses=2).kind == "Let"  # 3 uses: kept
        assert inline_lets(e, max_uses=3).kind != "Let"

    def test_max_size(self):
        e = parse("let w = a + b + c in w")
        assert inline_lets(e, max_size=3).kind == "Let"
        assert inline_lets(e, max_size=10).kind != "Let"

    def test_custom_predicate(self):
        e = parse("let keep = 1 in let drop = 2 in keep + drop")
        out = inline_lets(e, should_inline=lambda node, uses: node.binder == "drop")
        lets = [n for n in preorder(out) if n.kind == "Let"]
        assert len(lets) == 1 and lets[0].binder == "keep"

    def test_single_use_inline_never_grows(self):
        e = parse("let w = a + b + c + d in g w")
        out = inline_lets(e, max_uses=1)
        assert out.size <= e.size


class TestCSERoundTrip:
    """inline(cse(e)) must be alpha-equivalent to inline(e): the CSE
    pass only introduces sharing, never changes the term."""

    @pytest.mark.parametrize(
        "source",
        [
            "(a + (v + 7)) * (v + 7)",
            r"foo (\x. x + 7) (\y. y + 7)",
            "(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)",
            r"\t. foo (\x. x + t) (\y. \x2. x2 + t)",
        ],
    )
    def test_paper_examples(self, source):
        e = uniquify_binders(parse(source))
        normal_before = inline_lets(e)
        normal_after = inline_lets(cse(e).expr)
        assert alpha_equivalent(normal_before, normal_after)

    @given(exprs(max_size=60))
    def test_property(self, e):
        e = uniquify_binders(e)
        normal_before = inline_lets(e)
        normal_after = inline_lets(cse(e).expr)
        assert alpha_equivalent(normal_before, normal_after)

    def test_workload(self):
        from repro.workloads.mnist_cnn import build_mnist_cnn

        e = build_mnist_cnn()
        transformed = cse(e, min_size=4).expr
        assert alpha_equivalent(inline_lets(e), inline_lets(transformed))
