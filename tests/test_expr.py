"""Unit tests for the core AST (repro.lang.expr)."""

import pytest

from repro.lang.expr import (
    App,
    Lam,
    Let,
    Lit,
    Var,
    app_many,
    lam_many,
    let_many,
    syntactic_eq,
)


class TestConstruction:
    def test_var(self):
        v = Var("x")
        assert v.kind == "Var"
        assert v.name == "x"
        assert v.size == 1
        assert v.depth == 1
        assert v.children() == ()

    def test_lit_kinds(self):
        assert Lit(3).value == 3
        assert Lit(3.5).value == 3.5
        assert Lit(True).value is True
        assert Lit("s").value == "s"

    def test_lam_size_depth(self):
        e = Lam("x", App(Var("x"), Var("y")))
        assert e.size == 4
        assert e.depth == 3
        assert e.binder == "x"
        assert e.children() == (e.body,)

    def test_app_size_depth(self):
        e = App(Var("f"), App(Var("g"), Var("x")))
        assert e.size == 5
        assert e.depth == 3

    def test_let_size_depth_children(self):
        e = Let("x", Lit(1), Var("x"))
        assert e.size == 3
        assert e.depth == 2
        assert e.children() == (e.bound, e.body)

    def test_size_additive(self):
        a = App(Var("f"), Var("x"))
        b = Lam("y", Var("y"))
        assert App(a, b).size == 1 + a.size + b.size

    def test_bad_var_name(self):
        with pytest.raises(TypeError):
            Var("")
        with pytest.raises(TypeError):
            Var(3)  # type: ignore[arg-type]

    def test_bad_lam(self):
        with pytest.raises(TypeError):
            Lam("", Var("x"))
        with pytest.raises(TypeError):
            Lam("x", "not an expr")  # type: ignore[arg-type]

    def test_bad_app(self):
        with pytest.raises(TypeError):
            App(Var("f"), None)  # type: ignore[arg-type]

    def test_bad_let(self):
        with pytest.raises(TypeError):
            Let("x", Var("a"), 5)  # type: ignore[arg-type]

    def test_bad_lit(self):
        with pytest.raises(TypeError):
            Lit([1, 2])  # type: ignore[arg-type]


class TestBuilders:
    def test_lam_many(self):
        e = lam_many(["x", "y"], Var("x"))
        assert isinstance(e, Lam) and e.binder == "x"
        assert isinstance(e.body, Lam) and e.body.binder == "y"

    def test_lam_many_empty(self):
        body = Var("z")
        assert lam_many([], body) is body

    def test_app_many_left_nested(self):
        e = app_many(Var("f"), Var("a"), Var("b"))
        assert isinstance(e, App)
        assert isinstance(e.fn, App)
        assert e.fn.arg.name == "a"  # type: ignore[union-attr]
        assert e.arg.name == "b"  # type: ignore[union-attr]

    def test_let_many_order(self):
        e = let_many([("a", Lit(1)), ("b", Lit(2))], Var("b"))
        assert isinstance(e, Let) and e.binder == "a"
        assert isinstance(e.body, Let) and e.body.binder == "b"


class TestIdentitySemantics:
    def test_nodes_hash_by_identity(self):
        a, b = Var("x"), Var("x")
        assert len({a, b}) == 2

    def test_no_structural_dunder_eq(self):
        assert (Var("x") == Var("x")) is False


class TestSyntacticEq:
    def test_equal_trees(self):
        e1 = Lam("x", App(Var("x"), Lit(1)))
        e2 = Lam("x", App(Var("x"), Lit(1)))
        assert syntactic_eq(e1, e2)

    def test_same_object(self):
        e = App(Var("f"), Var("x"))
        assert syntactic_eq(e, e)

    def test_binder_name_matters(self):
        assert not syntactic_eq(Lam("x", Var("x")), Lam("y", Var("y")))

    def test_kind_mismatch(self):
        assert not syntactic_eq(Var("x"), Lit(1))

    def test_lit_type_distinction(self):
        assert not syntactic_eq(Lit(1), Lit(1.0))
        assert not syntactic_eq(Lit(True), Lit(1))
        assert not syntactic_eq(Lit(0), Lit(False))

    def test_let_fields(self):
        e1 = Let("x", Lit(1), Var("x"))
        e2 = Let("x", Lit(2), Var("x"))
        e3 = Let("y", Lit(1), Var("y"))
        assert not syntactic_eq(e1, e2)
        assert not syntactic_eq(e1, e3)

    def test_deep_chain_no_recursion_error(self):
        e1 = Var("x")
        e2 = Var("x")
        for i in range(30_000):
            e1 = Lam(f"v{i}", e1)
            e2 = Lam(f"v{i}", e2)
        assert syntactic_eq(e1, e2)

    def test_deep_chain_detects_difference_at_bottom(self):
        e1 = Var("x")
        e2 = Var("y")
        for i in range(10_000):
            e1 = Lam(f"v{i}", e1)
            e2 = Lam(f"v{i}", e2)
        assert not syntactic_eq(e1, e2)

    def test_size_shortcut(self):
        assert not syntactic_eq(Var("x"), App(Var("x"), Var("y")))
