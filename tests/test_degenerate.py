"""Degenerate-input coverage across summarise / rebuild / store.

The satellite contract: literal-only expressions, a single free
variable, deeply left- and right-skewed chains (~depth 2000 -- far past
CPython's default recursion limit, so any accidental recursion fails
loudly), and shadowed binders, pushed through the Step-1 summarisers,
their rebuild inverses, the fast hasher, the incremental hasher and the
store.

``TestVeryDeepChains`` raises the ceiling to depth 5000 (PR 3): the
summarisers, both rebuilds, the CEK evaluator, the store and the
parallel engine are all explicit-stack / explicit-continuation, so the
*only* recursion-limited path near a corpus is pickling the trees --
which the fork-mode parallel engine deliberately never does, and whose
failure mode is pinned here as a regression canary.
"""

import pickle

import pytest

from repro.core.esummary import (
    esummary_equal,
    hash_esummary_tree,
    rebuild_naive,
    rebuild_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.core.combiners import default_combiners
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.core.incremental import IncrementalHasher
from repro.lang.alpha import alpha_equivalent
from repro.lang.evaluator import evaluate
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.store import ExprStore

DEPTH = 2000
#: The PR-3 ceiling: ~5x CPython's default recursion limit, so any
#: accidental recursion anywhere in the pipeline fails loudly.
DEPTH_DEEP = 5000


def check_summarise_rebuild_store(expr, store=None):
    """The full degenerate gauntlet for one expression."""
    combiners = default_combiners()
    tagged = summarise_tagged(expr)
    naive = summarise_naive(expr)
    # the two summarisers agree on alpha-equivalence partitions via
    # their rebuilds being alpha-equivalent to the original
    assert alpha_equivalent(rebuild_tagged(tagged), expr)
    assert alpha_equivalent(rebuild_naive(naive), expr)
    # round-trip: summarising the rebuild reproduces the summary
    assert esummary_equal(summarise_tagged(rebuild_tagged(tagged)), tagged)
    # the fast hash equals the hash of the materialised summary
    root = alpha_hash_root(expr, combiners)
    assert root == hash_esummary_tree(combiners, tagged)
    # store-memoized hashing and interning agree
    store = store if store is not None else ExprStore(combiners)
    assert store.hash_expr(expr) == root
    node_id = store.intern(expr)
    assert store.hash_of(node_id) == root
    assert alpha_equivalent(store.expr_of(node_id), expr)
    return node_id


class TestLiteralOnly:
    def test_single_literal(self):
        check_summarise_rebuild_store(Lit(7))

    def test_literal_tree(self):
        e = App(App(Lit(1), Lit(2)), App(Lit(1), Lit(2)))
        store = ExprStore()
        check_summarise_rebuild_store(e, store)
        # identical literal subtrees collapse to single canonical entries
        assert store.intern(App(Lit(1), Lit(2))) == store.intern(
            App(Lit(1), Lit(2))
        )

    def test_literal_types_not_conflated(self):
        store = ExprStore()
        assert store.intern(Lit(1)) != store.intern(Lit(1.0))
        assert store.intern(Lit(True)) != store.intern(Lit(1))
        assert store.intern(Lit("1")) != store.intern(Lit(1))

    def test_empty_varmap_everywhere(self):
        e = App(Lit(1), Lit(2))
        assert summarise_tagged(e).varmap.entries == {}


class TestSingleFreeVariable:
    def test_bare_var(self):
        check_summarise_rebuild_store(Var("x"))

    def test_free_var_summary_is_singleton(self):
        summary = summarise_tagged(Var("x"))
        assert summary.varmap.find_singleton() == "x"

    def test_same_name_same_class_distinct_name_distinct_class(self):
        store = ExprStore()
        a = store.intern(Var("x"))
        assert store.intern(Var("x")) == a
        assert store.intern(Var("y")) != a

    def test_free_under_binder_chain(self):
        e = Lam("a", Lam("b", Var("x")))
        node_id = check_summarise_rebuild_store(e)
        store = ExprStore()
        # free variables must match by name across classes
        assert store.intern(Lam("p", Lam("q", Var("x")))) == store.intern(e)
        assert store.intern(Lam("p", Lam("q", Var("y")))) != store.intern(e)
        assert node_id is not None


def left_skewed_app(depth: int):
    e = Var("f")
    for _ in range(depth):
        e = App(e, Var("x"))
    return e


def right_skewed_app(depth: int):
    e = Var("x")
    for _ in range(depth):
        e = App(Var("f"), e)
    return e


def lam_chain(depth: int):
    e = Var("x0")
    for i in range(depth):
        e = Lam(f"x{i}", e)
    return e


def let_chain(depth: int):
    e = Var(f"v{DEPTH - 1}")
    for i in range(depth - 1, -1, -1):
        e = Let(f"v{i}", Lit(i) if i == 0 else Var(f"v{i - 1}"), e)
    return e


class TestDeepChains:
    def test_left_skewed_app_chain(self):
        check_summarise_rebuild_store(left_skewed_app(DEPTH))

    def test_right_skewed_app_chain(self):
        check_summarise_rebuild_store(right_skewed_app(DEPTH))

    def test_lambda_chain(self):
        check_summarise_rebuild_store(lam_chain(DEPTH))

    def test_let_chain(self):
        check_summarise_rebuild_store(let_chain(DEPTH))

    def test_deep_chains_share_suffixes_in_store(self):
        # every level of a right-skewed chain is its own class; interning
        # two copies hits all of them
        store = ExprStore()
        a = store.intern(right_skewed_app(DEPTH))
        misses = store.stats.misses
        assert store.intern(right_skewed_app(DEPTH)) == a
        assert store.stats.misses == misses

    def test_incremental_replace_at_depth(self):
        e = right_skewed_app(DEPTH)
        store = ExprStore()
        inc = IncrementalHasher(e, store=store)
        path = (1,) * (DEPTH - 1)
        stats = inc.replace(path, Var("z"))
        assert stats.path_nodes == DEPTH - 1
        assert inc.root_hash == alpha_hash_root(inc.expr)

    def test_alpha_oracle_on_deep_chains(self):
        assert alpha_equivalent(lam_chain(DEPTH), lam_chain(DEPTH))
        assert not alpha_equivalent(
            left_skewed_app(DEPTH), right_skewed_app(DEPTH)
        )


class TestVeryDeepChains:
    """Depth-5000 regression wall (the PR-3 satellite contract).

    Everything on the hashing pipeline -- summarise (both variants),
    rebuild (both variants), the fast hasher, the store, the CEK
    evaluator -- must survive ~5x the default recursion limit without
    touching ``sys.setrecursionlimit``.
    """

    def test_summarise_and_rebuild_both_variants(self):
        e = lam_chain(DEPTH_DEEP)
        tagged = summarise_tagged(e)
        naive = summarise_naive(e)
        assert alpha_equivalent(rebuild_tagged(tagged), e)
        assert alpha_equivalent(rebuild_naive(naive), e)
        assert esummary_equal(summarise_tagged(rebuild_tagged(tagged)), tagged)

    def test_full_gauntlet_on_skewed_chains(self):
        check_summarise_rebuild_store(left_skewed_app(DEPTH_DEEP))
        check_summarise_rebuild_store(right_skewed_app(DEPTH_DEEP))

    def test_evaluator_deep_let_chain(self):
        # let v0 = 0 in let v1 = v0 in ... in v_{n-1}  ==> 0
        e = Var(f"v{DEPTH_DEEP - 1}")
        for i in range(DEPTH_DEEP - 1, -1, -1):
            e = Let(f"v{i}", Lit(i) if i == 0 else Var(f"v{i - 1}"), e)
        assert evaluate(e) == 0

    def test_evaluator_deep_application_chain(self):
        identity = Lam("y", Var("y"))
        e = Lit(1)
        for _ in range(DEPTH_DEEP):
            e = App(identity, e)
        assert evaluate(e, fuel=20 * DEPTH_DEEP) == 1

    def test_store_interns_deep_chain(self):
        store = ExprStore()
        a = store.intern(lam_chain(DEPTH_DEEP))
        assert store.intern(lam_chain(DEPTH_DEEP)) == a

    def test_parallel_engine_handles_deep_corpus(self):
        """Fork workers inherit the corpus through process memory; the
        engine must not fall back to pickling, which recurses."""
        from repro.store import parallel_hash_corpus

        corpus = [lam_chain(DEPTH_DEEP), right_skewed_app(DEPTH_DEEP)]
        assert parallel_hash_corpus(corpus, workers=2) == ExprStore(
        ).hash_corpus(corpus)

    def test_pickle_is_the_recursive_path(self):
        """Canary: if pickling deep trees ever stops recursing, the
        engine's fork-only shipping rule can be revisited."""
        with pytest.raises(RecursionError):
            pickle.dumps(lam_chain(DEPTH_DEEP))


class TestShadowedBinders:
    def test_shadowed_lambda_still_alpha_correct(self):
        shadowed = Lam("x", Lam("x", Var("x")))  # inner binder wins
        distinct = Lam("a", Lam("b", Var("b")))
        outer_ref = Lam("a", Lam("b", Var("a")))
        store = ExprStore()
        assert store.intern(shadowed) == store.intern(distinct)
        assert store.intern(shadowed) != store.intern(outer_ref)

    def test_shadowed_let(self):
        shadowed = Let("x", Lit(1), Let("x", Lit(2), Var("x")))
        distinct = Let("a", Lit(1), Let("b", Lit(2), Var("b")))
        store = ExprStore()
        assert store.intern(shadowed) == store.intern(distinct)

    def test_let_bound_refers_to_outer_binding(self):
        # in Let x = e1 in e2 the binder scopes over e2 only: an x inside
        # the bound expression is the *outer* x
        inner_shadow = Lam("x", Let("x", Var("x"), Var("x")))
        spelled_out = Lam("y", Let("z", Var("y"), Var("z")))
        store = ExprStore()
        assert store.intern(inner_shadow) == store.intern(spelled_out)

    def test_shadowed_summaries_agree_with_hash(self):
        combiners = default_combiners()
        shadowed = Lam("x", Lam("x", Var("x")))
        assert hash_esummary_tree(
            combiners, summarise_tagged(shadowed)
        ) == alpha_hash_root(shadowed, combiners)

    def test_deep_shadowed_chain(self):
        e = Var("x")
        for _ in range(DEPTH):
            e = Lam("x", e)  # same binder name the whole way down
        check_summarise_rebuild_store(e)

    @pytest.mark.parametrize("depth", [0, 1, 2, DEPTH])
    def test_equivalence_classes_tolerate_depth(self, depth):
        from repro.core.equivalence import equivalence_classes

        e = right_skewed_app(max(depth, 1))
        classes = equivalence_classes(e, min_count=2, min_size=1, verify=True)
        # the repeated Var("f") occurrences form the only repeated class
        if depth >= 2:
            assert any(cls.representative.kind == "Var" for cls in classes)
