"""Degenerate-input coverage across summarise / rebuild / store.

The satellite contract: literal-only expressions, a single free
variable, deeply left- and right-skewed chains (~depth 2000 -- far past
CPython's default recursion limit, so any accidental recursion fails
loudly), and shadowed binders, pushed through the Step-1 summarisers,
their rebuild inverses, the fast hasher, the incremental hasher and the
store.
"""

import pytest

from repro.core.esummary import (
    esummary_equal,
    hash_esummary_tree,
    rebuild_naive,
    rebuild_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.core.combiners import default_combiners
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.core.incremental import IncrementalHasher
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.store import ExprStore

DEPTH = 2000


def check_summarise_rebuild_store(expr, store=None):
    """The full degenerate gauntlet for one expression."""
    combiners = default_combiners()
    tagged = summarise_tagged(expr)
    naive = summarise_naive(expr)
    # the two summarisers agree on alpha-equivalence partitions via
    # their rebuilds being alpha-equivalent to the original
    assert alpha_equivalent(rebuild_tagged(tagged), expr)
    assert alpha_equivalent(rebuild_naive(naive), expr)
    # round-trip: summarising the rebuild reproduces the summary
    assert esummary_equal(summarise_tagged(rebuild_tagged(tagged)), tagged)
    # the fast hash equals the hash of the materialised summary
    root = alpha_hash_root(expr, combiners)
    assert root == hash_esummary_tree(combiners, tagged)
    # store-memoized hashing and interning agree
    store = store if store is not None else ExprStore(combiners)
    assert store.hash_expr(expr) == root
    node_id = store.intern(expr)
    assert store.hash_of(node_id) == root
    assert alpha_equivalent(store.expr_of(node_id), expr)
    return node_id


class TestLiteralOnly:
    def test_single_literal(self):
        check_summarise_rebuild_store(Lit(7))

    def test_literal_tree(self):
        e = App(App(Lit(1), Lit(2)), App(Lit(1), Lit(2)))
        store = ExprStore()
        check_summarise_rebuild_store(e, store)
        # identical literal subtrees collapse to single canonical entries
        assert store.intern(App(Lit(1), Lit(2))) == store.intern(
            App(Lit(1), Lit(2))
        )

    def test_literal_types_not_conflated(self):
        store = ExprStore()
        assert store.intern(Lit(1)) != store.intern(Lit(1.0))
        assert store.intern(Lit(True)) != store.intern(Lit(1))
        assert store.intern(Lit("1")) != store.intern(Lit(1))

    def test_empty_varmap_everywhere(self):
        e = App(Lit(1), Lit(2))
        assert summarise_tagged(e).varmap.entries == {}


class TestSingleFreeVariable:
    def test_bare_var(self):
        check_summarise_rebuild_store(Var("x"))

    def test_free_var_summary_is_singleton(self):
        summary = summarise_tagged(Var("x"))
        assert summary.varmap.find_singleton() == "x"

    def test_same_name_same_class_distinct_name_distinct_class(self):
        store = ExprStore()
        a = store.intern(Var("x"))
        assert store.intern(Var("x")) == a
        assert store.intern(Var("y")) != a

    def test_free_under_binder_chain(self):
        e = Lam("a", Lam("b", Var("x")))
        node_id = check_summarise_rebuild_store(e)
        store = ExprStore()
        # free variables must match by name across classes
        assert store.intern(Lam("p", Lam("q", Var("x")))) == store.intern(e)
        assert store.intern(Lam("p", Lam("q", Var("y")))) != store.intern(e)
        assert node_id is not None


def left_skewed_app(depth: int):
    e = Var("f")
    for _ in range(depth):
        e = App(e, Var("x"))
    return e


def right_skewed_app(depth: int):
    e = Var("x")
    for _ in range(depth):
        e = App(Var("f"), e)
    return e


def lam_chain(depth: int):
    e = Var("x0")
    for i in range(depth):
        e = Lam(f"x{i}", e)
    return e


def let_chain(depth: int):
    e = Var(f"v{DEPTH - 1}")
    for i in range(depth - 1, -1, -1):
        e = Let(f"v{i}", Lit(i) if i == 0 else Var(f"v{i - 1}"), e)
    return e


class TestDeepChains:
    def test_left_skewed_app_chain(self):
        check_summarise_rebuild_store(left_skewed_app(DEPTH))

    def test_right_skewed_app_chain(self):
        check_summarise_rebuild_store(right_skewed_app(DEPTH))

    def test_lambda_chain(self):
        check_summarise_rebuild_store(lam_chain(DEPTH))

    def test_let_chain(self):
        check_summarise_rebuild_store(let_chain(DEPTH))

    def test_deep_chains_share_suffixes_in_store(self):
        # every level of a right-skewed chain is its own class; interning
        # two copies hits all of them
        store = ExprStore()
        a = store.intern(right_skewed_app(DEPTH))
        misses = store.stats.misses
        assert store.intern(right_skewed_app(DEPTH)) == a
        assert store.stats.misses == misses

    def test_incremental_replace_at_depth(self):
        e = right_skewed_app(DEPTH)
        store = ExprStore()
        inc = IncrementalHasher(e, store=store)
        path = (1,) * (DEPTH - 1)
        stats = inc.replace(path, Var("z"))
        assert stats.path_nodes == DEPTH - 1
        assert inc.root_hash == alpha_hash_root(inc.expr)

    def test_alpha_oracle_on_deep_chains(self):
        assert alpha_equivalent(lam_chain(DEPTH), lam_chain(DEPTH))
        assert not alpha_equivalent(
            left_skewed_app(DEPTH), right_skewed_app(DEPTH)
        )


class TestShadowedBinders:
    def test_shadowed_lambda_still_alpha_correct(self):
        shadowed = Lam("x", Lam("x", Var("x")))  # inner binder wins
        distinct = Lam("a", Lam("b", Var("b")))
        outer_ref = Lam("a", Lam("b", Var("a")))
        store = ExprStore()
        assert store.intern(shadowed) == store.intern(distinct)
        assert store.intern(shadowed) != store.intern(outer_ref)

    def test_shadowed_let(self):
        shadowed = Let("x", Lit(1), Let("x", Lit(2), Var("x")))
        distinct = Let("a", Lit(1), Let("b", Lit(2), Var("b")))
        store = ExprStore()
        assert store.intern(shadowed) == store.intern(distinct)

    def test_let_bound_refers_to_outer_binding(self):
        # in Let x = e1 in e2 the binder scopes over e2 only: an x inside
        # the bound expression is the *outer* x
        inner_shadow = Lam("x", Let("x", Var("x"), Var("x")))
        spelled_out = Lam("y", Let("z", Var("y"), Var("z")))
        store = ExprStore()
        assert store.intern(inner_shadow) == store.intern(spelled_out)

    def test_shadowed_summaries_agree_with_hash(self):
        combiners = default_combiners()
        shadowed = Lam("x", Lam("x", Var("x")))
        assert hash_esummary_tree(
            combiners, summarise_tagged(shadowed)
        ) == alpha_hash_root(shadowed, combiners)

    def test_deep_shadowed_chain(self):
        e = Var("x")
        for _ in range(DEPTH):
            e = Lam("x", e)  # same binder name the whole way down
        check_summarise_rebuild_store(e)

    @pytest.mark.parametrize("depth", [0, 1, 2, DEPTH])
    def test_equivalence_classes_tolerate_depth(self, depth):
        from repro.core.equivalence import equivalence_classes

        e = right_skewed_app(max(depth, 1))
        classes = equivalence_classes(e, min_count=2, min_size=1, verify=True)
        # the repeated Var("f") occurrences form the only repeated class
        if depth >= 2:
            assert any(cls.representative.kind == "Var" for cls in classes)
