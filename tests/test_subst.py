"""Tests for capture-avoiding substitution."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Let, Lit, Var, syntactic_eq
from repro.lang.names import free_vars
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.subst import substitute

from strategies import exprs


class TestBasics:
    def test_simple_replacement(self):
        out = substitute(parse("x + 1"), {"x": Lit(5)})
        assert pretty(out) == "5 + 1"

    def test_multiple_names(self):
        out = substitute(parse("x + y"), {"x": Lit(1), "y": Lit(2)})
        assert pretty(out) == "1 + 2"

    def test_replacement_is_expression(self):
        out = substitute(parse("f x"), {"x": parse("g 3")})
        assert pretty(out) == "f (g 3)"

    def test_empty_mapping_is_identity(self):
        e = parse(r"\x. x")
        assert substitute(e, {}) is e

    def test_no_occurrence_returns_same_object(self):
        e = parse(r"\x. x + 1")
        assert substitute(e, {"zz": Lit(9)}) is e

    def test_all_occurrences(self):
        out = substitute(parse("x * x + x"), {"x": Lit(2)})
        assert pretty(out) == "2 * 2 + 2"


class TestScoping:
    def test_binder_shadows(self):
        out = substitute(parse(r"x (\x. x)"), {"x": Lit(1)})
        assert pretty(out) == "1 (\\x. x)"

    def test_let_body_shadowed_bound_not(self):
        e = Let("x", Var("x"), Var("x"))
        out = substitute(e, {"x": Lit(7)})
        assert isinstance(out, Let)
        assert pretty(out.bound) == "7"
        assert pretty(out.body) == "x"

    def test_deeply_shadowed(self):
        out = substitute(parse(r"x + (\y. x + (\x. x) y)"), {"x": Lit(3)})
        assert pretty(out) == "3 + (\\y. 3 + (\\x. x) y)"


class TestCaptureAvoidance:
    def test_lambda_capture_renamed(self):
        # substituting y := x under \x must not capture
        e = parse(r"\x. y")
        out = substitute(e, {"y": Var("x")})
        assert isinstance(out, Lam)
        assert out.binder != "x"
        assert out.body.name == "x"  # the free x we inserted
        assert free_vars(out) == {"x"}

    def test_let_capture_renamed(self):
        e = parse("let x = 1 in y")
        out = substitute(e, {"y": Var("x")})
        assert isinstance(out, Let)
        assert out.binder != "x"
        assert free_vars(out) == {"x"}

    def test_capture_rename_preserves_bound_occurrences(self):
        e = parse(r"\x. x + y")
        out = substitute(e, {"y": Var("x")})
        # result must be alpha-equivalent to \z. z + x
        assert alpha_equivalent(out, parse(r"\z. z + x"))

    def test_no_rename_without_risk(self):
        e = parse(r"\x. y")
        out = substitute(e, {"y": Var("z")})
        assert out.binder == "x"

    def test_fresh_name_avoids_everything(self):
        # the obvious fresh candidates already exist in the term
        e = parse(r"\x. \x0. x0 (x y)")
        out = substitute(e, {"y": Var("x")})
        assert alpha_equivalent(out, parse(r"\a. \b. b (a x)"))


class TestSemantics:
    def test_beta_reduction_equivalence(self):
        from repro.lang.evaluator import evaluate

        fn = parse(r"\x. x * x + x")
        arg = parse("2 + 3")
        beta = substitute(fn.body, {"x": arg})
        assert evaluate(beta) == evaluate(App(fn, arg))

    @given(exprs(max_size=40), st.integers(0, 100))
    def test_substituting_fresh_var_then_renaming_back(self, e, value):
        # substituting a variable that does not occur is identity
        out = substitute(e, {"@never@": Lit(value)})
        assert out is e

    @given(exprs(max_size=40))
    def test_identity_substitution_alpha_neutral(self, e):
        # x := x is alpha-neutral even where x occurs free
        for name in sorted(free_vars(e))[:2]:
            out = substitute(e, {name: Var(name)})
            assert alpha_equivalent(out, e)


class TestDeep:
    def test_deep_chain(self):
        e = Var("target")
        for i in range(20_000):
            e = Lam(f"v{i}", e)
        out = substitute(e, {"target": Lit(1)})
        assert out.size == e.size
        body = out
        for _ in range(20_000):
            body = body.body
        assert isinstance(body, Lit)
