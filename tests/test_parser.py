"""Unit tests for the surface-syntax parser."""

import pytest
from hypothesis import given

from repro.lang.expr import App, Lam, Let, Lit, Var, syntactic_eq
from repro.lang.parser import ParseError, parse
from repro.lang.pretty import pretty

from strategies import exprs


class TestAtoms:
    def test_variable(self):
        e = parse("hello")
        assert isinstance(e, Var) and e.name == "hello"

    def test_primed_identifier(self):
        assert parse("x'").name == "x'"  # type: ignore[union-attr]

    def test_int(self):
        e = parse("42")
        assert isinstance(e, Lit) and e.value == 42 and isinstance(e.value, int)

    def test_float(self):
        e = parse("3.5")
        assert isinstance(e, Lit) and e.value == 3.5

    def test_bools(self):
        assert parse("true").value is True  # type: ignore[union-attr]
        assert parse("false").value is False  # type: ignore[union-attr]

    def test_string(self):
        assert parse('"hi"').value == "hi"  # type: ignore[union-attr]

    def test_string_escapes(self):
        assert parse(r'"a\"b"').value == 'a"b'  # type: ignore[union-attr]

    def test_parens(self):
        assert isinstance(parse("(x)"), Var)


class TestApplication:
    def test_left_associative(self):
        e = parse("f a b")
        assert isinstance(e, App) and isinstance(e.fn, App)
        assert e.fn.fn.name == "f"  # type: ignore[union-attr]

    def test_application_over_parens(self):
        e = parse("f (a b)")
        assert isinstance(e.arg, App)  # type: ignore[union-attr]


class TestArithmetic:
    def test_desugars_to_prims(self):
        e = parse("x + 7")
        assert isinstance(e, App)
        assert e.fn.fn.name == "add"  # type: ignore[union-attr]

    def test_precedence_mul_over_add(self):
        e = parse("a + b * c")
        assert e.fn.fn.name == "add"  # type: ignore[union-attr]
        assert e.arg.fn.fn.name == "mul"  # type: ignore[union-attr]

    def test_precedence_app_over_mul(self):
        e = parse("f x * y")
        assert e.fn.fn.name == "mul"  # type: ignore[union-attr]
        assert isinstance(e.fn.arg, App)  # type: ignore[union-attr]

    def test_left_assoc_sub(self):
        e = parse("a - b - c")
        # (a - b) - c
        assert e.fn.fn.name == "sub"  # type: ignore[union-attr]
        assert e.fn.arg.fn.fn.name == "sub"  # type: ignore[union-attr]

    def test_division(self):
        assert parse("a / b").fn.fn.name == "div"  # type: ignore[union-attr]


class TestBinders:
    def test_lambda(self):
        e = parse(r"\x. x")
        assert isinstance(e, Lam) and e.binder == "x"

    def test_unicode_lambda(self):
        assert isinstance(parse("λx. x"), Lam)

    def test_multi_binder_sugar(self):
        e = parse(r"\x y. x y")
        assert isinstance(e, Lam) and isinstance(e.body, Lam)

    def test_lambda_body_extends_right(self):
        e = parse(r"\x. x + 1")
        assert isinstance(e, Lam)
        assert isinstance(e.body, App)

    def test_let(self):
        e = parse("let w = v + 7 in w * w")
        assert isinstance(e, Let) and e.binder == "w"

    def test_let_lambda_bound(self):
        e = parse(r"let f = \x. x in f 3")
        assert isinstance(e, Let) and isinstance(e.bound, Lam)

    def test_nested_lets(self):
        e = parse("let a = 1 in let b = a in b")
        assert isinstance(e, Let) and isinstance(e.body, Let)


class TestWhitespaceAndComments:
    def test_comments(self):
        e = parse("x # trailing comment\n + y")
        assert e.fn.fn.name == "add"  # type: ignore[union-attr]

    def test_multiline(self):
        e = parse("let a =\n  1\nin a")
        assert isinstance(e, Let)


class TestErrors:
    def test_unexpected_char(self):
        with pytest.raises(ParseError):
            parse("x ? y")

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("x)")

    def test_missing_body(self):
        with pytest.raises(ParseError):
            parse(r"\x.")

    def test_missing_in(self):
        with pytest.raises(ParseError, match="'in'"):
            parse("let x = 1 x")

    def test_error_location(self):
        with pytest.raises(ParseError, match="line 2"):
            parse("x +\n ?")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(x")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            r"\x. x + 7",
            "let w = v + 7 in (a + w) * w",
            r"foo (\x. x + 7) (\y. y + 7)",
            "a + b * c - d / e",
            r"(\f. f (f 2)) (\x. x * x)",
            'g "str" 3.5 true',
        ],
    )
    def test_specific(self, text):
        e = parse(text)
        assert syntactic_eq(parse(pretty(e)), e)

    @given(exprs(max_size=60))
    def test_property(self, e):
        assert syntactic_eq(parse(pretty(e)), e)

    @given(exprs(max_size=60))
    def test_property_no_sugar(self, e):
        assert syntactic_eq(parse(pretty(e, sugar=False)), e)
