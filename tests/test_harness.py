"""Tests for the experiment harnesses (structure, not performance)."""

import pytest

from repro.evalharness.ablations import (
    ABLATION_VARIANTS,
    alpha_hash_all_always_left,
    alpha_hash_all_recompute_vm,
    run_ablations,
)
from repro.evalharness.config import PROFILES, current_profile
from repro.evalharness.fig2 import run_fig2
from repro.evalharness.fig3 import run_fig3
from repro.evalharness.fig4 import run_fig4
from repro.evalharness.format import format_ms, format_seconds, format_table
from repro.evalharness.incremental_exp import format_rows as format_incremental
from repro.evalharness.incremental_exp import run_incremental
from repro.evalharness.opcounts import format_rows as format_opcounts
from repro.evalharness.opcounts import run_opcounts
from repro.evalharness.table1 import format_rows as format_table1
from repro.evalharness.table1 import run_table1
from repro.evalharness.table2 import run_table2
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.core.hashed import alpha_hash_all


class TestConfig:
    def test_profiles_exist(self):
        assert set(PROFILES) == {"ci", "small", "paper"}

    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_profile().name == "ci"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert current_profile().name == "small"

    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert current_profile("paper").name == "paper"

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            current_profile("huge")

    def test_paper_profile_matches_appendix(self):
        paper = PROFILES["paper"]
        assert paper.fig4_trials == 10 * 2**16
        assert paper.fig4_bits == 16
        assert max(paper.fig2_sizes) == 2**20


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_seconds_scales(self):
        assert format_seconds(5e-7) == "0.5 us"
        assert format_seconds(2e-3) == "2.00 ms"
        assert format_seconds(2.5) == "2.50 s"

    def test_format_ms(self):
        assert format_ms(0.000002) == "0.002"
        assert format_ms(0.0042) == "4.20"
        assert format_ms(0.82) == "820.0"


class TestTable1:
    def test_all_rows_consistent(self):
        rows = run_table1(random_trials=4, seed=1)
        assert len(rows) == 4
        assert all(row.consistent for row in rows)

    def test_formatting_mentions_observations(self):
        rows = run_table1(random_trials=2)
        text = format_table1(rows)
        assert "Ours" in text and "ok" in text and "MISMATCH" not in text


class TestFig2:
    def test_structure(self):
        result = run_fig2(
            "balanced",
            sizes=(64, 256, 1024),
            algorithms=("structural", "ours"),
            repeats=1,
        )
        assert result.sizes == [64, 256, 1024]
        assert set(result.seconds) == {"structural", "ours"}
        assert all(t is not None for t in result.seconds["ours"])
        assert result.slope("ours") is not None

    def test_ln_cap_produces_none(self):
        result = run_fig2(
            "unbalanced",
            sizes=(256, 4096),
            algorithms=("locally_nameless",),
            scale="ci",
            repeats=1,
        )
        assert result.seconds["locally_nameless"][-1] is None

    def test_format(self):
        result = run_fig2(
            "balanced", sizes=(64, 256), algorithms=("ours",), repeats=1
        )
        text = result.format()
        assert "Figure 2" in text and "slope" in text


class TestFig3:
    def test_structure(self):
        result = run_fig3(
            layer_counts=(1, 2), algorithms=("structural", "ours"), repeats=1
        )
        assert result.layers == [1, 2]
        assert result.sizes[0] < result.sizes[1]
        assert "Figure 3" in result.format()


class TestTable2:
    def test_structure_without_quadratic_baseline(self):
        result = run_table2(algorithms=("structural", "debruijn", "ours"), repeats=1)
        assert [name for name, _ in result.workloads] == [
            "MNIST CNN",
            "GMM",
            "BERT 12",
        ]
        assert result.workloads[2][1] == 12975
        assert result.ratio("ours", "structural", "BERT 12") > 0.5
        text = result.format()
        assert "Table 2" in text and "(paper)" in text
        assert "Table 2" in result.format(show_paper=False)


class TestFig4:
    def test_structure(self):
        result = run_fig4(sizes=(32, 64), trials=10, bits=12, seed=5)
        assert result.sizes == [32, 64]
        assert len(result.random_results) == 2
        text = result.format()
        assert "Figure 4" in text and "Thm 6.7" in text


class TestIncrementalExperiment:
    def test_rows(self):
        rows = run_incremental(sizes=(512, 2048), scale="ci", seed=1)
        assert [r.size for r in rows] == [512, 2048]
        for row in rows:
            assert row.touched_nodes < row.size
            assert 0 < row.touched_fraction < 1
        text = format_incremental(rows, "balanced")
        assert "6.3" in text


class TestOpCounts:
    def test_rows_and_blowup(self):
        rows = run_opcounts(sizes=(512, 4096), shape="unbalanced", seed=0)
        for row in rows:
            assert row.smaller_subtree_ops <= row.lemma_bound
            assert row.always_left_ops >= row.smaller_subtree_ops
        # disabling the optimisation must hurt noticeably by n=4096
        assert rows[-1].always_left_ops > 3 * rows[-1].smaller_subtree_ops
        assert "Lemma 6.1" in format_opcounts(rows)


class TestAblationVariants:
    def test_variants_registered(self):
        assert set(ABLATION_VARIANTS) == {"ours", "always_left", "recompute_vm", "lazy"}

    def test_always_left_is_still_correct(self):
        e = random_expr(300, seed=4, p_let=0.2)
        renamed = alpha_rename(e)
        assert (
            alpha_hash_all_always_left(e).root_hash
            == alpha_hash_all_always_left(renamed).root_hash
        )

    def test_recompute_vm_bit_identical_to_production(self):
        e = random_expr(300, seed=5, p_let=0.2)
        fast = alpha_hash_all(e)
        slow = alpha_hash_all_recompute_vm(e)
        from repro.lang.traversal import preorder

        for node in preorder(e):
            assert fast.hash_of(node) == slow.hash_of(node)

    def test_run_ablations_structure(self):
        result = run_ablations(
            sizes=(128, 512), variants=("ours", "lazy"), scale="ci", seed=0
        )
        assert set(result.seconds) == {"ours", "lazy"}
        assert "Ablations" in result.format()
