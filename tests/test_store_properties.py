"""Property tests: the store's partition equals the paper's oracles.

The satellite contract: interning into :class:`ExprStore` partitions
expressions exactly as (a) equality of materialised Step-1 tagged
e-summaries and (b) the reference :func:`alpha_equivalent` decision
procedure -- including alpha-varied copies of the same skeleton, which
exercise the modulo-alpha part of the store keys.
"""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.esummary import esummary_equal, summarise_tagged
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import alpha_rename
from repro.lang.alpha import alpha_equivalent
from repro.store import ExprStore

from strategies import exprs, structural_exprs


@given(st.lists(exprs(max_size=40), min_size=2, max_size=4), st.integers(0, 7))
def test_partition_matches_both_oracles(es, pick):
    # throw in an alpha-varied copy of one drawn expression so at least
    # one non-syntactic equality is always present
    es = es + [alpha_rename(es[pick % len(es)], seed=9)]
    store = ExprStore()
    ids = store.intern_many(es)
    summaries = [summarise_tagged(e) for e in es]
    for i, j in combinations(range(len(es)), 2):
        same_store = ids[i] == ids[j]
        same_summary = esummary_equal(summaries[i], summaries[j])
        same_alpha = alpha_equivalent(es[i], es[j])
        assert same_store == same_summary == same_alpha


@given(structural_exprs(max_leaves=15), st.integers(1, 5))
def test_alpha_varied_copies_collapse_to_one_class(e, seed):
    store = ExprStore()
    original = store.intern(e)
    assert store.intern(alpha_rename(e, seed=seed)) == original


@given(exprs(max_size=60))
def test_subexpression_grouping_matches_fresh_hashes(e):
    # the store's per-node view must induce the same subexpression
    # grouping as a from-scratch AlphaHashes pass
    store = ExprStore()
    view = store.hashes(e)
    fresh = alpha_hash_all(e)
    groups_view: dict[int, list] = {}
    groups_fresh: dict[int, list] = {}
    for path, node, value in fresh.items():
        groups_fresh.setdefault(value, []).append(path)
        groups_view.setdefault(view.hash_of(node), []).append(path)
    assert groups_view == groups_fresh


@given(exprs(max_size=50))
def test_intern_is_idempotent_and_canonicalising(e):
    store = ExprStore()
    node_id = store.intern(e)
    assert store.intern(e) == node_id
    canonical = store.expr_of(node_id)
    assert alpha_equivalent(canonical, e)
    assert store.intern(canonical) == node_id


@settings(max_examples=25)
@given(st.lists(exprs(max_size=30), min_size=2, max_size=4), st.integers(0, 2**10))
def test_lru_churn_preserves_consistency(es, seed):
    # eviction invalidates old ids (classes are re-minted on re-intern)
    # but must never corrupt the live table: hashes key live entries,
    # children of live entries stay pinned, and a fresh intern always
    # lands on the entry its alpha-hash points at
    from repro.core.hashed import alpha_hash_root
    from repro.gen.random_exprs import random_expr

    store = ExprStore(max_entries=60)
    store.intern_many(es)
    for s in range(4):  # churn to force evictions
        store.intern(random_expr(35, seed=seed + s))
    for e in es:
        node_id = store.intern(e)
        assert store.lookup_hash(alpha_hash_root(e)) == node_id
        assert store.hash_of(node_id) == alpha_hash_root(e)
    for entry in store.entries():
        assert store.lookup_hash(entry.hash) == entry.node_id
        for kid in entry.children:
            assert kid in store
