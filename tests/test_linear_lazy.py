"""Tests for the Appendix C lazy-linear-transform variant."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.equivalence import group_by_hash
from repro.core.hashed import alpha_hash_all
from repro.core.linear_lazy import LazyVarMap, LinearFn, alpha_hash_all_lazy
from repro.core.varmap import MapOpStats
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.parser import parse

from strategies import exprs

_MASK = (1 << 64) - 1


class TestLinearFn:
    def test_identity(self):
        f = LinearFn.identity(_MASK)
        assert f(12345) == 12345

    def test_evaluation(self):
        f = LinearFn(3, 7, _MASK)
        assert f(10) == 37

    def test_even_coefficient_rejected(self):
        with pytest.raises(ValueError):
            LinearFn(2, 0, _MASK)

    @given(st.integers(0, _MASK), st.integers(0, _MASK), st.integers(0, _MASK))
    def test_inverse(self, a, b, x):
        f = LinearFn(a | 1, b, _MASK)
        assert f.inverse_apply(f(x)) == x
        assert f(f.inverse_apply(x)) == x

    @given(
        st.integers(0, _MASK),
        st.integers(0, _MASK),
        st.integers(0, _MASK),
        st.integers(0, _MASK),
        st.integers(0, _MASK),
    )
    def test_composition(self, a1, b1, a2, b2, x):
        inner = LinearFn(a1 | 1, b1, _MASK)
        composed = inner.compose_after(a2 | 1, b2)
        outer = LinearFn(a2 | 1, b2, _MASK)
        assert composed(x) == outer(inner(x))

    def test_small_modulus(self):
        mask = (1 << 16) - 1
        f = LinearFn(3, 1, mask)
        assert f.inverse_apply(f(1234)) == 1234


@st.composite
def lazy_op_sequences(draw):
    n = draw(st.integers(1, 30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(("insert", "remove", "transform")))
        key = draw(st.sampled_from(("a", "b", "c")))
        value = draw(st.integers(0, _MASK))
        a = draw(st.integers(0, _MASK)) | 1
        b = draw(st.integers(0, _MASK))
        ops.append((kind, key, value, a, b))
    return ops


def _mult(key: str) -> int:
    return (2 * hash(key) + 1) & _MASK


class TestLazyVarMap:
    @given(lazy_op_sequences())
    def test_materialise_oracle(self, ops):
        """The lazy map must behave like an eager map + eager transforms."""
        lazy = LazyVarMap(_MASK)
        eager: dict[str, int] = {}
        for kind, key, value, a, b in ops:
            if kind == "insert":
                lazy.insert_actual(key, _mult(key), value)
                eager[key] = value
            elif kind == "remove":
                got = lazy.remove(key, _mult(key))
                expected = eager.pop(key, None)
                assert got == expected
            else:
                fn = LinearFn(a, b, _MASK)
                lazy.transform_all(fn)
                eager = {k: fn(v) for k, v in eager.items()}
            assert lazy.materialise() == eager

    @given(lazy_op_sequences())
    def test_hash_matches_definition(self, ops):
        """hash == sum of multiplier * actual-value, maintained in O(1)."""
        lazy = LazyVarMap(_MASK)
        for kind, key, value, a, b in ops:
            if kind == "insert":
                lazy.insert_actual(key, _mult(key), value)
            elif kind == "remove":
                lazy.remove(key, _mult(key))
            else:
                lazy.transform_all(LinearFn(a, b, _MASK))
            expected = 0
            for k, actual in lazy.materialise().items():
                expected = (expected + _mult(k) * actual) & _MASK
            assert lazy.hash_value() == expected

    def test_get_actual(self):
        lazy = LazyVarMap(_MASK)
        lazy.insert_actual("x", _mult("x"), 42)
        lazy.transform_all(LinearFn(3, 5, _MASK))
        assert lazy.get_actual("x") == (3 * 42 + 5) & _MASK
        assert lazy.get_actual("zz") is None


class TestLazyAlgorithm:
    @given(exprs(max_size=60))
    def test_alpha_invariance(self, e):
        assert (
            alpha_hash_all_lazy(e).root_hash
            == alpha_hash_all_lazy(alpha_rename(e)).root_hash
        )

    @given(exprs(max_size=50))
    def test_same_equivalence_classes_as_tagged(self, e):
        tagged = group_by_hash(alpha_hash_all(e))
        lazy = group_by_hash(alpha_hash_all_lazy(e))
        tagged_groups = sorted(sorted(p for p, _ in g) for g in tagged.values())
        lazy_groups = sorted(sorted(p for p, _ in g) for g in lazy.values())
        assert tagged_groups == lazy_groups

    @given(exprs(max_size=35), exprs(max_size=35))
    def test_discrimination(self, e1, e2):
        same = alpha_hash_all_lazy(e1).root_hash == alpha_hash_all_lazy(e2).root_hash
        assert same == alpha_equivalent(e1, e2)

    def test_paper_examples(self):
        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        hashes = alpha_hash_all_lazy(e)
        assert hashes.hash_of(e.fn.arg) == hashes.hash_of(e.arg)

    def test_op_counts_match_smaller_subtree_policy(self):
        e = random_expr(2048, seed=6, shape="unbalanced")
        stats = MapOpStats()
        alpha_hash_all_lazy(e, stats=stats)
        import math

        assert stats.merge_entries <= 2048 * math.log2(2048)

    def test_large_unbalanced(self):
        e = random_expr(20_000, seed=8, shape="unbalanced")
        assert alpha_hash_all_lazy(e).root_hash is not None

    def test_16_bit_width(self):
        from repro.core.combiners import HashCombiners

        c = HashCombiners(bits=16, seed=2)
        e = random_expr(100, seed=3)
        value = alpha_hash_all_lazy(e, c).root_hash
        assert 0 <= value < (1 << 16)
