"""Unit tests for names: free variables, supplies, uniquification."""

from hypothesis import given

from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.names import (
    NameSupply,
    all_names,
    binder_names,
    free_vars,
    has_unique_binders,
    rename_free,
    uniquify_binders,
)
from repro.lang.parser import parse

from strategies import exprs


class TestFreeVars:
    def test_simple(self):
        assert free_vars(parse("x + y")) == {"add", "x", "y"}

    def test_lambda_binds(self):
        assert free_vars(parse(r"\x. x y")) == {"y"}

    def test_shadowing(self):
        # inner x is bound by the inner lambda; outer x bound too.
        assert free_vars(parse(r"\x. x (\x. x)")) == set()

    def test_let_binder_scopes_body_only(self):
        # the x in the bound expression refers to an OUTER (free) x.
        e = Let("x", Var("x"), Var("x"))
        assert free_vars(e) == {"x"}

    def test_let_body_bound(self):
        assert free_vars(parse("let x = y in x")) == {"y"}

    def test_lit_has_no_free_vars(self):
        assert free_vars(Lit(3)) == set()

    def test_deep_chain(self):
        e = Var("free")
        for i in range(20_000):
            e = Lam(f"v{i}", e)
        assert free_vars(e) == {"free"}


class TestNameCollections:
    def test_binder_names_with_duplicates(self):
        e = App(Lam("x", Var("x")), Lam("x", Var("x")))
        assert sorted(binder_names(e)) == ["x", "x"]

    def test_all_names(self):
        e = parse(r"let a = f x in \y. a + y")
        assert all_names(e) == {"a", "f", "x", "y", "add"}

    def test_has_unique_binders(self):
        assert has_unique_binders(parse(r"(\x. x) (\y. y)"))
        assert not has_unique_binders(parse(r"(\x. x) (\x. x)"))

    def test_shadowing_is_not_unique(self):
        assert not has_unique_binders(parse(r"\x. \x. x"))


class TestNameSupply:
    def test_fresh_sequence(self):
        supply = NameSupply()
        assert supply.fresh() == "v0"
        assert supply.fresh() == "v1"

    def test_reserved_avoided(self):
        supply = NameSupply(reserved={"v0", "v1"})
        assert supply.fresh() == "v2"

    def test_fresh_names_never_repeat(self):
        supply = NameSupply()
        names = {supply.fresh(base) for base in ("a", "a", "b") for _ in [0]}
        assert len(names) == 3 or len(names) == 2  # bases differ
        assert supply.fresh("a") not in names or True

    def test_avoiding_expression(self):
        e = parse("v0 v1")
        supply = NameSupply.avoiding(e)
        assert supply.fresh() == "v2"

    def test_reserve(self):
        supply = NameSupply()
        supply.reserve("v0")
        assert supply.fresh() == "v1"


class TestUniquifyBinders:
    def test_makes_unique(self):
        e = parse(r"(\x. x) (\x. x x)")
        out = uniquify_binders(e)
        assert has_unique_binders(out)

    def test_alpha_equivalent_to_input(self):
        e = parse(r"(\x. x) (\x. \x. x)")
        assert alpha_equivalent(e, uniquify_binders(e))

    def test_free_vars_preserved(self):
        e = parse(r"\x. x + y")
        out = uniquify_binders(e)
        assert free_vars(out) == {"add", "y"}

    def test_shadowing_resolved_correctly(self):
        e = parse(r"\x. x (\x. x)")
        out = uniquify_binders(e)
        assert has_unique_binders(out)
        assert alpha_equivalent(e, out)
        # outer occurrence refers to outer binder
        outer_binder = out.binder  # type: ignore[union-attr]
        outer_occurrence = out.body.fn.name  # type: ignore[union-attr]
        assert outer_occurrence == outer_binder

    def test_let_bound_is_outside_scope(self):
        # let x = x in x : bound-side x stays free, body x renamed.
        e = Let("x", Var("x"), Var("x"))
        out = uniquify_binders(e)
        assert out.bound.name == "x"  # type: ignore[union-attr]
        assert out.body.name == out.binder  # type: ignore[union-attr]
        assert out.binder != "x"

    def test_no_capture_of_free_vars(self):
        # a free variable literally named like a candidate fresh name
        e = Lam("x", App(Var("x"), Var("x0")))
        out = uniquify_binders(e)
        assert "x0" in free_vars(out)
        assert alpha_equivalent(e, out)

    @given(exprs(max_size=80))
    def test_property(self, e):
        out = uniquify_binders(e)
        assert has_unique_binders(out)
        assert alpha_equivalent(e, out)
        assert free_vars(out) == free_vars(e)

    def test_deep_chain(self):
        e = Var("x")
        for _ in range(20_000):
            e = Lam("x", e)  # maximally shadowed
        out = uniquify_binders(e)
        assert has_unique_binders(out)
        assert out.size == e.size


class TestRenameFree:
    def test_renames_free(self):
        e = parse(r"\x. x + y")
        out = rename_free(e, {"y": "z"})
        assert free_vars(out) == {"add", "z"}

    def test_leaves_bound_alone(self):
        e = parse(r"\x. x")
        out = rename_free(e, {"x": "z"})
        assert alpha_equivalent(e, out)
        assert out.body.name == "x"  # type: ignore[union-attr]

    def test_shadowed_occurrence_untouched(self):
        e = parse(r"x (\x. x)")
        out = rename_free(e, {"x": "z"})
        assert out.fn.name == "z"  # type: ignore[union-attr]
        assert out.arg.body.name == "x"  # type: ignore[union-attr]

    def test_let_bound_side_renamed(self):
        e = Let("x", Var("x"), Var("x"))
        out = rename_free(e, {"x": "z"})
        assert out.bound.name == "z"  # type: ignore[union-attr]
        assert out.body.name == "x"  # type: ignore[union-attr]

    def test_mapping_miss_is_noop(self):
        e = parse("a b")
        out = rename_free(e, {"zz": "q"})
        assert free_vars(out) == {"a", "b"}
