"""Tests for the AST-to-graph ML preprocessing application."""

import networkx as nx

from repro.apps.ml_graph import ast_to_graph, graph_stats
from repro.lang.parser import parse


class TestGraphShape:
    def test_node_per_occurrence(self):
        e = parse("f x x")
        graph = ast_to_graph(e)
        assert graph.number_of_nodes() == e.size

    def test_child_edges_form_tree(self):
        e = parse(r"let a = f x in \y. a + y")
        graph = ast_to_graph(e, equality_links=False)
        assert graph.number_of_edges() == e.size - 1
        assert nx.is_arborescence(graph)

    def test_child_edge_indices(self):
        e = parse("f x")
        graph = ast_to_graph(e, equality_links=False)
        assert graph.edges[(), (0,)]["index"] == 0
        assert graph.edges[(), (1,)]["index"] == 1

    def test_node_attributes(self):
        e = parse(r"\x. x + 3")
        graph = ast_to_graph(e)
        root = graph.nodes[()]
        assert root["kind"] == "Lam"
        assert root["label"] == "x"
        assert root["size"] == e.size
        assert isinstance(root["alpha_hash"], int)

    def test_lit_label(self):
        graph = ast_to_graph(parse("3"))
        assert graph.nodes[()]["label"] == "3"


class TestEqualityLinks:
    def test_links_between_alpha_equivalent(self):
        e = parse(r"pair (\x. x + 7) (\y. y + 7)")
        graph = ast_to_graph(e, min_class_size=2)
        equal_edges = [
            (u, v)
            for u, v, d in graph.edges(data=True)
            if d.get("kind") == "alpha_equal"
        ]
        assert equal_edges
        # the two lambdas are linked
        lam_paths = [p for p, d in graph.nodes(data=True) if d["kind"] == "Lam"]
        linked = {frozenset(edge) for edge in equal_edges}
        assert any(set(edge) <= set(lam_paths) for edge in linked)

    def test_chain_not_clique(self):
        e = parse("q (v + 1) (v + 1) (v + 1) (v + 1)")
        # min size 4 excludes the 3-node partial application "add v".
        graph = ast_to_graph(e, min_class_size=4)
        stats = graph_stats(graph)
        # 4 occurrences chained: 3 edges, not 6
        assert stats.equality_edges == 3

    def test_class_id_attributes(self):
        e = parse("g (v + 1) (v + 1)")
        graph = ast_to_graph(e, min_class_size=3)
        tagged = [d for _, d in graph.nodes(data=True) if "class_id" in d]
        assert len(tagged) >= 2

    def test_links_disabled(self):
        e = parse("g (v + 1) (v + 1)")
        graph = ast_to_graph(e, equality_links=False)
        assert graph_stats(graph).equality_edges == 0

    def test_min_class_size_filters_variables(self):
        e = parse("f x x")
        graph = ast_to_graph(e, min_class_size=2)
        assert graph_stats(graph).equality_edges == 0
        graph_all = ast_to_graph(e, min_class_size=1)
        assert graph_stats(graph_all).equality_edges == 1

    def test_verify_mode(self):
        e = parse("g (v + 1) (v + 1)")
        graph = ast_to_graph(e, verify=True, min_class_size=4)
        assert graph_stats(graph).equality_edges == 1


class TestStats:
    def test_counts(self):
        e = parse("g (v + 1) (v + 1)")
        stats = graph_stats(ast_to_graph(e, min_class_size=1))
        assert stats.nodes == e.size
        assert stats.child_edges == e.size - 1
        assert stats.classes >= 1

    def test_workload_scale(self):
        from repro.workloads.mnist_cnn import build_mnist_cnn

        e = build_mnist_cnn()
        stats = graph_stats(ast_to_graph(e, min_class_size=4))
        assert stats.nodes == 840
        assert stats.equality_edges >= 8  # nine inlined activations chained
