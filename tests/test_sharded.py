"""ShardedExprStore: API parity with the flat store, striping invariants.

The sharded store's contract: identical *hashes and class partitions*
to a flat :class:`ExprStore` over any corpus (node ids may differ --
they encode the owning shard), per-shard counters that always sum to
the store totals, refcount-safe cross-shard LRU eviction, a shard-merge
operation, and flat-format snapshots that round-trip in both
directions.
"""

import random
import threading

import pytest

from repro.core.combiners import HashCombiners
from repro.gen.adversarial import adversarial_pair
from repro.gen.random_exprs import random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Lit, Var
from repro.store import DEFAULT_NUM_SHARDS, ExprStore, ShardedExprStore


def mixed_corpus(n_items: int, seed: int = 11, size: int = 60):
    """Random + adversarial + duplicated items, the differential diet."""
    rng = random.Random(seed)
    corpus = []
    for index in range(n_items):
        roll = rng.random()
        if roll < 0.15 and corpus:
            corpus.append(rng.choice(corpus))  # duplicate object
        elif roll < 0.3:
            a, b = adversarial_pair(size, seed=rng.randrange(1 << 30))
            corpus.append(a)
            corpus.append(b)
        else:
            corpus.append(
                random_expr(
                    size,
                    rng=rng,
                    shape=rng.choice(("balanced", "unbalanced")),
                    p_let=0.3,
                    p_lit=0.1,
                )
            )
    return corpus


def partition(ids):
    """Canonical shape of an id sequence (first-occurrence indices)."""
    return [ids.index(i) for i in ids]


class TestFlatParity:
    def test_hashes_bit_identical(self):
        corpus = mixed_corpus(80)
        assert ShardedExprStore(num_shards=4).hash_corpus(
            corpus
        ) == ExprStore().hash_corpus(corpus)

    def test_class_partition_matches_flat(self):
        corpus = mixed_corpus(60)
        flat_ids = ExprStore().intern_many(corpus)
        sharded_ids = ShardedExprStore(num_shards=4).intern_many(corpus)
        assert partition(sharded_ids) == partition(flat_ids)

    def test_entry_lookups(self):
        store = ShardedExprStore(num_shards=4)
        expr = Lam("x", App(Var("x"), Lit(7)))
        node_id = store.intern(expr)
        assert node_id in store
        assert store.hash_of(node_id) == store.hash_expr(expr)
        assert store.size_of(node_id) == expr.size
        assert alpha_equivalent(store.expr_of(node_id), expr)
        assert store.lookup_hash(store.hash_of(node_id)) == node_id

    def test_alpha_equivalent_trees_share_class(self):
        store = ShardedExprStore(num_shards=4)
        assert store.intern(Lam("x", Var("x"))) == store.intern(
            Lam("y", Var("y"))
        )

    def test_entry_count_matches_flat(self):
        corpus = mixed_corpus(40)
        flat = ExprStore()
        flat.intern_many(corpus)
        sharded = ShardedExprStore(num_shards=8)
        sharded.intern_many(corpus)
        assert len(sharded) == len(flat)

    def test_ids_encode_their_shard(self):
        store = ShardedExprStore(num_shards=4)
        store.intern_many(mixed_corpus(30))
        for entry in store.entries():
            assert entry.node_id % 4 == entry.hash % 4

    def test_num_shards_validation(self):
        with pytest.raises(ValueError):
            ShardedExprStore(num_shards=0)


class TestShardStats:
    def test_hits_and_misses_conserved_across_shards(self):
        store = ShardedExprStore(num_shards=8)
        store.intern_many(mixed_corpus(120))
        per_shard = store.shard_stats()
        assert sum(s.hits for s in per_shard) == store.stats.hits
        assert sum(s.misses for s in per_shard) == store.stats.misses
        assert sum(s.evictions for s in per_shard) == store.stats.evictions
        assert store.stats.hits > 0 and store.stats.misses > 0

    def test_shard_misses_equal_shard_occupancy_when_unbounded(self):
        store = ShardedExprStore(num_shards=8)
        store.intern_many(mixed_corpus(60))
        for shard_stats, size in zip(store.shard_stats(), store.shard_sizes()):
            assert shard_stats.misses == size

    def test_occupancy_spreads_over_shards(self):
        store = ShardedExprStore(num_shards=8)
        store.intern_many(mixed_corpus(120))
        sizes = store.shard_sizes()
        assert sum(sizes) == len(store)
        # splitmix-mixed hashes spread evenly; no shard should dominate
        assert max(sizes) <= 3 * (sum(sizes) / len(sizes))


class TestEviction:
    def test_lru_bound_evicts_everything_unpinned(self):
        store = ShardedExprStore(num_shards=4, max_entries=40)
        store.intern_many(mixed_corpus(60))
        assert store.stats.evictions > 0
        unbounded = ShardedExprStore(num_shards=4)
        unbounded.intern_many(mixed_corpus(60))
        assert len(store) < len(unbounded)
        # The bound is soft exactly like the flat store's: a shard over
        # its ceil-split bound (10) may hold only entries pinned by live
        # parents (refcount > 0), plus at most the protected fresh root.
        for shard_index in range(4):
            over = [
                e
                for e in store.entries()
                if e.node_id % 4 == shard_index
            ]
            if len(over) > 10:
                unpinned = [e for e in over if e.refcount == 0]
                assert len(unpinned) <= 1

    def test_referenced_children_survive_eviction(self):
        store = ShardedExprStore(num_shards=2, max_entries=8)
        store.intern_many(mixed_corpus(40, size=30))
        for entry in store.entries():
            for kid in entry.children:
                assert kid in store  # no dangling child links

    def test_eviction_never_changes_hashes(self):
        corpus = mixed_corpus(30, size=20)
        bounded = ShardedExprStore(num_shards=2, max_entries=6)
        bounded.intern_many(corpus)
        assert bounded.hash_corpus(corpus) == ExprStore().hash_corpus(corpus)


class TestMerge:
    def test_merge_flat_store(self):
        corpus = mixed_corpus(50)
        flat = ExprStore()
        flat.intern_many(corpus)
        sharded = ShardedExprStore(num_shards=4)
        mapping = sharded.merge_store(flat)
        assert len(sharded) == len(flat)
        assert set(mapping) == {e.node_id for e in flat.entries()}
        for entry in flat.entries():
            assert sharded.hash_of(mapping[entry.node_id]) == entry.hash

    def test_merge_sharded_store(self):
        left = ShardedExprStore(num_shards=4)
        right = ShardedExprStore(num_shards=2)
        corpus = mixed_corpus(40)
        left.intern_many(corpus[: len(corpus) // 2])
        right.intern_many(corpus[len(corpus) // 2 :])
        left.merge_store(right)
        expected = ExprStore()
        expected.intern_many(corpus)
        assert len(left) == len(expected)

    def test_merge_is_idempotent(self):
        flat = ExprStore()
        flat.intern_many(mixed_corpus(30))
        sharded = ShardedExprStore(num_shards=4)
        sharded.merge_store(flat)
        before = len(sharded)
        sharded.merge_store(flat)
        assert len(sharded) == before

    def test_merge_rejects_mismatched_combiners(self):
        other = ExprStore(HashCombiners(bits=32))
        with pytest.raises(ValueError):
            ShardedExprStore(num_shards=2).merge_store(other)


class TestSnapshots:
    def test_save_load_round_trip(self, tmp_path):
        corpus = mixed_corpus(40)
        store = ShardedExprStore(num_shards=4)
        hashes = store.hash_corpus(corpus)
        store.intern_many(corpus)
        path = str(tmp_path / "sharded.snap")
        store.save(path)
        restored = ShardedExprStore.load(path)
        assert restored.num_shards == 4
        assert len(restored) == len(store)
        assert restored.hash_corpus(corpus) == hashes
        for value in hashes:
            assert restored.lookup_hash(value) is not None

    def test_load_into_different_shard_count(self, tmp_path):
        store = ShardedExprStore(num_shards=4)
        corpus = mixed_corpus(30)
        store.intern_many(corpus)
        path = str(tmp_path / "sharded.snap")
        store.save(path)
        restored = ShardedExprStore.load(path, num_shards=2)
        assert restored.num_shards == 2
        assert len(restored) == len(store)

    def test_flat_store_can_read_sharded_snapshot(self, tmp_path):
        store = ShardedExprStore(num_shards=4)
        corpus = mixed_corpus(30)
        hashes = store.hash_corpus(corpus)
        store.intern_many(corpus)
        path = str(tmp_path / "sharded.snap")
        store.save(path)
        flat = ExprStore.load(path)
        assert flat.hash_corpus(corpus) == hashes
        assert len(flat) == len(store)

    def test_loaded_stats_are_consistent(self, tmp_path):
        store = ShardedExprStore(num_shards=4)
        store.intern_many(mixed_corpus(30))
        path = str(tmp_path / "sharded.snap")
        store.save(path)
        restored = ShardedExprStore.load(path)
        per_shard = restored.shard_stats()
        assert sum(s.misses for s in per_shard) == restored.stats.misses
        assert restored.stats.misses == len(restored)


class TestNativeSnapshotV2:
    """The ISSUE 5 satellite: the v2 sharded layout preserves node ids,
    per-shard recency/counters, and parallel-snapshots shards."""

    def build(self, num_shards=4, n_items=60):
        corpus = mixed_corpus(n_items)
        store = ShardedExprStore(num_shards=num_shards)
        hashes = store.hash_corpus(corpus)
        ids = store.intern_many(corpus)
        return corpus, store, hashes, ids

    def test_v2_format_tag_and_id_preservation(self, tmp_path):
        from repro.store import SHARDED_SNAPSHOT_FORMAT, read_snapshot

        corpus, store, hashes, ids = self.build()
        path = str(tmp_path / "native.snap")
        store.save(path)
        restored, header = read_snapshot(path)
        assert header["format"] == SHARDED_SNAPSHOT_FORMAT
        assert isinstance(restored, ShardedExprStore)
        # Node ids survive the round-trip (v1 re-assigned them).
        assert restored.intern_many(corpus) == ids
        assert restored.hash_corpus(corpus) == hashes
        assert {e.node_id for e in restored.entries()} == {
            e.node_id for e in store.entries()
        }

    def test_bytes_round_trip_without_files(self):
        from repro.store import snapshot_from_bytes, snapshot_to_bytes

        corpus, store, hashes, ids = self.build()
        restored, _header = snapshot_from_bytes(snapshot_to_bytes(store))
        assert restored.intern_many(corpus) == ids
        assert restored.hash_corpus(corpus) == hashes

    def test_per_shard_stats_and_sizes_survive(self, tmp_path):
        corpus, store, _hashes, _ids = self.build()
        path = str(tmp_path / "native.snap")
        store.save(path)
        restored = ShardedExprStore.load(path)
        assert restored.shard_sizes() == store.shard_sizes()
        assert [s.as_dict() for s in restored.shard_stats()] == [
            s.as_dict() for s in store.shard_stats()
        ]
        assert restored.stats.as_dict() == store.stats.as_dict()

    def test_restored_canonicals_hash_as_memo_hits(self, tmp_path):
        corpus, store, _hashes, _ids = self.build()
        path = str(tmp_path / "native.snap")
        store.save(path)
        restored = ShardedExprStore.load(path)
        hits_before = restored.stats.memo_hits
        for entry in restored.entries():
            restored.hash_expr(entry.expr)
        assert restored.stats.hashed_nodes == store.stats.hashed_nodes
        assert restored.stats.memo_hits > hits_before

    def test_save_does_not_disturb_the_store(self):
        from repro.store import snapshot_to_bytes

        corpus, store, _hashes, _ids = self.build()
        stats_before = store.stats.as_dict()
        memo_before = len(store._memo)
        snapshot_to_bytes(store)
        assert store.stats.as_dict() == stats_before
        assert len(store._memo) == memo_before

    def test_tampered_v2_body_fails_loudly(self, tmp_path):
        from repro.store import SnapshotError, snapshot_from_bytes, snapshot_to_bytes

        _corpus, store, _hashes, _ids = self.build()
        data = bytearray(snapshot_to_bytes(store))
        data[-2] ^= 0xFF
        with pytest.raises(SnapshotError, match="checksum"):
            snapshot_from_bytes(bytes(data))

    def test_truncated_section_fails_loudly(self):
        from repro.store import SnapshotError, snapshot_from_bytes, snapshot_to_bytes

        _corpus, store, _hashes, _ids = self.build()
        data = snapshot_to_bytes(store)
        header, _newline, body = data.partition(b"\n")
        # Recompute the checksum over a truncated body so only the
        # shard-section accounting can catch the damage.
        import hashlib
        import json

        truncated = body[: len(body) // 2]
        doc = json.loads(header)
        doc["checksum"] = (
            "sha256:" + hashlib.sha256(truncated).hexdigest()
        )
        forged = (
            json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()
            + b"\n"
            + truncated
        )
        with pytest.raises(SnapshotError):
            snapshot_from_bytes(forged)

    def test_deep_entries_snapshot_iteratively(self, tmp_path):
        # Depth-2000 canonical chains: the encoder must stay iterative.
        from repro.lang.expr import App, Var

        deep = Var("x")
        for _ in range(2000):
            deep = App(Var("f"), deep)
        store = ShardedExprStore(num_shards=2)
        node_id = store.intern(deep)
        path = str(tmp_path / "deep.snap")
        store.save(path)
        restored = ShardedExprStore.load(path)
        assert restored.intern(deep) == node_id


class TestConcurrentIntern:
    def test_threaded_writers_build_one_consistent_table(self):
        """N threads interning overlapping slices concurrently must end
        at exactly the flat store's class partition, with conserved
        counters -- the lock-striping correctness claim."""
        corpus = mixed_corpus(120)
        store = ShardedExprStore(num_shards=8)
        errors = []

        def work(slice_):
            try:
                store.intern_many(slice_)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        third = len(corpus) // 3
        slices = [
            corpus[:third],
            corpus[third : 2 * third],
            corpus[2 * third :],
            corpus[::2],  # overlaps both halves
        ]
        threads = [threading.Thread(target=work, args=(s,)) for s in slices]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        flat = ExprStore()
        flat.intern_many(corpus)
        assert len(store) == len(flat)
        per_shard = store.shard_stats()
        assert sum(s.hits for s in per_shard) == store.stats.hits
        assert sum(s.misses for s in per_shard) == store.stats.misses

    def test_default_shard_count(self):
        assert ShardedExprStore().num_shards == DEFAULT_NUM_SHARDS
