"""Tests for the synthetic ML workloads (Table 2 / Figure 3 inputs)."""

import pytest

from repro.core.equivalence import equivalence_classes
from repro.lang.expr import syntactic_eq
from repro.lang.names import has_unique_binders
from repro.lang.traversal import preorder
from repro.workloads import TABLE2_WORKLOADS
from repro.workloads.bert import (
    BERT12_NODES,
    BERT_BASE,
    BERT_PER_LAYER,
    bert_target_nodes,
    build_bert,
)
from repro.workloads.common import pad_to, sum_chain
from repro.workloads.gmm import GMM_NODES, build_gmm
from repro.workloads.mnist_cnn import MNIST_CNN_NODES, build_mnist_cnn


class TestNodeCounts:
    def test_mnist_cnn_matches_table2(self):
        assert build_mnist_cnn().size == MNIST_CNN_NODES == 840

    def test_gmm_matches_table2(self):
        assert build_gmm().size == GMM_NODES == 1810

    def test_bert12_matches_table2(self):
        assert build_bert(12).size == BERT12_NODES == 12975

    def test_bert_affine_scaling(self):
        for layers in (1, 2, 3, 5):
            assert build_bert(layers).size == BERT_BASE + layers * BERT_PER_LAYER

    def test_bert_target_helper(self):
        assert bert_target_nodes(12) == 12975

    def test_registry_counts(self):
        for name, (builder, reported) in TABLE2_WORKLOADS.items():
            assert builder().size == reported, name


class TestWellFormedness:
    @pytest.mark.parametrize(
        "builder",
        [build_mnist_cnn, build_gmm, lambda: build_bert(2)],
    )
    def test_unique_binders(self, builder):
        assert has_unique_binders(builder())

    @pytest.mark.parametrize(
        "builder",
        [build_mnist_cnn, build_gmm, lambda: build_bert(2)],
    )
    def test_deterministic(self, builder):
        assert syntactic_eq(builder(), builder())

    def test_bert_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            build_bert(0)


class TestRepetitionStructure:
    """The workloads must contain the alpha-equivalent repetition the
    real compiler dumps have -- otherwise they would not exercise the
    problem the paper solves."""

    def test_cnn_has_repeated_blocks(self):
        classes = equivalence_classes(build_mnist_cnn(), min_size=4)
        assert classes, "expected repeated subexpressions"
        assert classes[0].count >= 2

    def test_gmm_has_repeated_blocks(self):
        classes = equivalence_classes(build_gmm(), min_size=4)
        assert classes

    def test_bert_has_repeated_blocks(self):
        classes = equivalence_classes(build_bert(2), min_size=4)
        assert classes

    def test_bert_layers_not_wholesale_equivalent(self):
        # distinct per-layer weights: layer bodies must NOT collapse.
        e = build_bert(2)
        lets = [n for n in preorder(e) if n.kind == "Let"]
        assert len(lets) > 100  # a deep ANF spine

    def test_workloads_have_deep_let_spines(self):
        for name, (builder, _) in TABLE2_WORKLOADS.items():
            e = builder()
            assert e.depth > 30, name


class TestPadTo:
    def test_pads_exactly(self):
        from repro.lang.expr import Var

        for target in range(1, 12):
            e = pad_to(Var("x"), target)
            assert e.size == target

    def test_rejects_shrinking(self):
        from repro.lang.expr import Var

        with pytest.raises(ValueError):
            pad_to(sum_chain([Var("a"), Var("b")]), 2)

    def test_padding_preserves_unique_binders(self):
        from repro.lang.expr import Var

        e = pad_to(Var("x"), 42)
        assert has_unique_binders(e)
