"""Tests for the differential-testing driver."""

from repro.analysis.differential import DiffTestReport, main, run_differential_test


class TestRun:
    def test_clean_run(self):
        report = run_differential_test(cases=8, max_size=50, seed=3)
        assert report.ok
        assert report.cases == 8
        assert report.failures == []

    def test_small_width_still_agrees_internally(self):
        # at 16 bits, collisions are possible but all three correct
        # algorithms use the same combiner family at different salts --
        # cross-algorithm partitions can legitimately differ from the
        # oracle only via a collision, which is ~n^2/2^16 per case, so a
        # few small cases should still pass.
        report = run_differential_test(cases=4, max_size=25, seed=5, bits=32)
        assert report.ok

    def test_deterministic(self):
        a = run_differential_test(cases=5, max_size=40, seed=9)
        b = run_differential_test(cases=5, max_size=40, seed=9)
        assert a.failures == b.failures == []


class TestCli:
    def test_main_ok(self, capsys):
        assert main(["--cases", "4", "--max-size", "30"]) == 0
        assert "all agree" in capsys.readouterr().out

    def test_dispatch_through_repro_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["difftest", "--cases", "3", "--max-size", "25"]) == 0
        capsys.readouterr()
