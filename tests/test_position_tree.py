"""Unit tests for position trees (both flavours) and their hash recipes."""

from repro.core.combiners import HashCombiners
from repro.core.position_tree import (
    PTBoth,
    PTHere,
    PTJoin,
    PTLeftOnly,
    PTRightOnly,
    hash_postree,
    postree_equal,
    postree_size,
    pt_both_hash,
    pt_here_hash,
    pt_join_hash,
    pt_left_hash,
    pt_right_hash,
)


class TestEquality:
    def test_here_singleton(self):
        assert postree_equal(PTHere, PTHere)

    def test_none_cases(self):
        assert postree_equal(None, None)
        assert not postree_equal(None, PTHere)
        assert not postree_equal(PTHere, None)

    def test_naive_forms(self):
        a = PTBoth(PTRightOnly(PTHere), PTHere)
        b = PTBoth(PTRightOnly(PTHere), PTHere)
        c = PTBoth(PTLeftOnly(PTHere), PTHere)
        assert postree_equal(a, b)
        assert not postree_equal(a, c)

    def test_join_tag_sensitivity(self):
        a = PTJoin(5, None, PTHere)
        b = PTJoin(5, None, PTHere)
        c = PTJoin(6, None, PTHere)
        assert postree_equal(a, b)
        assert not postree_equal(a, c)

    def test_join_big_vs_none(self):
        a = PTJoin(5, PTHere, PTHere)
        b = PTJoin(5, None, PTHere)
        assert not postree_equal(a, b)

    def test_deep_chain(self):
        a = PTHere
        b = PTHere
        for _ in range(20_000):
            a = PTLeftOnly(a)
            b = PTLeftOnly(b)
        assert postree_equal(a, b)
        assert not postree_equal(a, PTRightOnly(a))


class TestSize:
    def test_sizes(self):
        assert postree_size(None) == 0
        assert postree_size(PTHere) == 1
        assert postree_size(PTBoth(PTHere, PTHere)) == 3
        assert postree_size(PTJoin(3, None, PTHere)) == 2
        assert postree_size(PTJoin(3, PTHere, PTHere)) == 3


class TestHashRecipes:
    def setup_method(self):
        self.c = HashCombiners(seed=99)

    def test_here(self):
        assert hash_postree(self.c, PTHere) == pt_here_hash(self.c)

    def test_none(self):
        assert hash_postree(self.c, None) is None

    def test_left_right_differ(self):
        left = hash_postree(self.c, PTLeftOnly(PTHere))
        right = hash_postree(self.c, PTRightOnly(PTHere))
        assert left != right
        assert left == pt_left_hash(self.c, pt_here_hash(self.c))
        assert right == pt_right_hash(self.c, pt_here_hash(self.c))

    def test_both_composes(self):
        here = pt_here_hash(self.c)
        tree = PTBoth(PTLeftOnly(PTHere), PTHere)
        expected = pt_both_hash(self.c, pt_left_hash(self.c, here), here)
        assert hash_postree(self.c, tree) == expected

    def test_join_with_and_without_big(self):
        here = pt_here_hash(self.c)
        with_big = hash_postree(self.c, PTJoin(7, PTHere, PTHere))
        without = hash_postree(self.c, PTJoin(7, None, PTHere))
        assert with_big == pt_join_hash(self.c, 7, here, here)
        assert without == pt_join_hash(self.c, 7, None, here)
        assert with_big != without

    def test_join_tag_changes_hash(self):
        assert pt_join_hash(self.c, 1, None, 5) != pt_join_hash(self.c, 2, None, 5)

    def test_nested_join_hash(self):
        here = pt_here_hash(self.c)
        inner = PTJoin(3, None, PTHere)
        outer = PTJoin(9, inner, PTHere)
        expected_inner = pt_join_hash(self.c, 3, None, here)
        expected = pt_join_hash(self.c, 9, expected_inner, here)
        assert hash_postree(self.c, outer) == expected

    def test_deep_tree_hashing(self):
        tree = PTHere
        for i in range(20_000):
            tree = PTJoin(i + 2, None, tree)
        assert hash_postree(self.c, tree) is not None

    def test_different_seeds_redraw(self):
        other = HashCombiners(seed=100)
        tree = PTBoth(PTHere, PTHere)
        assert hash_postree(self.c, tree) != hash_postree(other, tree)
