"""Tests for structure sharing / hash-consing."""

from hypothesis import given

from repro.apps.sharing import share_alpha, share_syntactic
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Var, syntactic_eq
from repro.lang.parser import parse

from strategies import exprs


class TestSyntacticSharing:
    def test_repeated_subtrees_unify(self):
        e = parse("g (v + 1) (v + 1)")
        result = share_syntactic(e)
        assert result.unique_nodes < result.total_nodes
        assert result.root.fn.arg is result.root.arg  # type: ignore[union-attr]

    def test_result_syntactically_equal(self):
        e = parse("let a = f x in (f x) + a")
        result = share_syntactic(e)
        assert syntactic_eq(result.root, e)

    def test_alpha_variants_not_shared(self):
        e = parse(r"pair (\x. x) (\y. y)")
        result = share_syntactic(e)
        assert result.root.fn.arg is not result.root.arg  # type: ignore[union-attr]

    def test_sharing_ratio(self):
        e = parse("g (v + 1) (v + 1)")
        result = share_syntactic(e)
        assert result.sharing_ratio > 1.0

    def test_no_repetition_means_no_sharing_of_big_nodes(self):
        e = parse("a b")
        result = share_syntactic(e)
        assert result.unique_nodes == e.size

    @given(exprs(max_size=60))
    def test_property_equality_preserved(self, e):
        assert syntactic_eq(share_syntactic(e).root, e)

    @given(exprs(max_size=60))
    def test_property_dag_never_larger(self, e):
        result = share_syntactic(e)
        assert result.unique_nodes <= result.total_nodes == e.size


class TestAlphaSharing:
    def test_alpha_variants_shared(self):
        e = parse(r"pair (\x. x + 7) (\y. y + 7)")
        result = share_alpha(e)
        assert result.root.fn.arg is result.root.arg  # type: ignore[union-attr]

    def test_result_alpha_equivalent(self):
        e = parse(r"pair (\x. x + 7) (\y. y + 7)")
        result = share_alpha(e)
        assert alpha_equivalent(result.root, e)

    @given(exprs(max_size=60))
    def test_property_alpha_equivalence_preserved(self, e):
        assert alpha_equivalent(share_alpha(e).root, e)

    @given(exprs(max_size=60))
    def test_alpha_shares_at_least_as_much_as_syntactic(self, e):
        assert share_alpha(e).unique_nodes <= share_syntactic(e).unique_nodes

    def test_strictly_better_when_alpha_repetition_exists(self):
        e = parse(r"pair (\x. x + 7) (\y. y + 7)")
        assert share_alpha(e).unique_nodes < share_syntactic(e).unique_nodes


class TestStats:
    def test_counts(self):
        e = parse("g (v + 1) (v + 1)")
        result = share_syntactic(e)
        assert result.total_nodes == e.size
        # g, v, 1, add, (add v), (add v 1), (g ..), ((g ..) ..) = 8
        assert result.unique_nodes == 8

    def test_deep_chain(self):
        e = Var("x")
        for _ in range(10_000):
            e = Lam("v", App(e, Var("x")))  # same binder name everywhere
        result = share_syntactic(e)
        # each level embeds a strictly deeper subtree, so levels cannot
        # share; only the repeated Var("x") leaves collapse.
        assert result.total_nodes == e.size
        assert result.unique_nodes == 2 * 10_000 + 1


class TestDeepSharing:
    def test_identical_chain_levels_share(self):
        # Perfectly self-similar towers share nothing across LEVELS (each
        # level contains a distinct-size subtree), but repeated leaves do.
        e = Var("x")
        for _ in range(500):
            e = App(e, Var("x"))
        result = share_syntactic(e)
        # all Var("x") leaves collapse to one node: 500 Apps + 1 Var
        assert result.unique_nodes == 501
