"""Unit and property tests for the reference alpha-equivalence oracle."""

from hypothesis import given

from repro.gen.random_exprs import alpha_rename
from repro.lang.alpha import alpha_equivalent, alpha_group_exact
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.parser import parse

from strategies import exprs


class TestPaperExamples:
    def test_lambda_renaming(self):
        assert alpha_equivalent(parse(r"\x. x + y"), parse(r"\p. p + y"))

    def test_free_variable_mismatch(self):
        assert not alpha_equivalent(parse(r"\x. x + y"), parse(r"\q. q + z"))

    def test_let_binders(self):
        e1 = parse("let bar = x + 1 in bar * y")
        e2 = parse("let pub = x + 1 in pub * y")
        assert alpha_equivalent(e1, e2)

    def test_nested_lambdas(self):
        e1 = parse(r"\x. \y. x + y * 7")
        e2 = parse(r"\a. \b. a + b * 7")
        assert alpha_equivalent(e1, e2)

    def test_swapped_binders_not_equivalent(self):
        e1 = parse(r"\x. \y. x")
        e2 = parse(r"\x. \y. y")
        assert not alpha_equivalent(e1, e2)


class TestScoping:
    def test_shadowing(self):
        e1 = parse(r"\x. x (\x. x)")
        e2 = parse(r"\a. a (\b. b)")
        assert alpha_equivalent(e1, e2)

    def test_shadowing_mismatch(self):
        e1 = parse(r"\x. x (\y. x)")  # inner body uses OUTER binder
        e2 = parse(r"\a. a (\b. b)")  # inner body uses INNER binder
        assert not alpha_equivalent(e1, e2)

    def test_let_bound_is_outer_scope(self):
        # In `let x = x in x` the bound x is free/outer.
        e1 = Let("x", Var("x"), Var("x"))
        e2 = Let("y", Var("x"), Var("y"))
        assert alpha_equivalent(e1, e2)
        e3 = Let("y", Var("y"), Var("y"))  # bound side uses different free name
        assert not alpha_equivalent(e1, e3)

    def test_bound_vs_free_same_name(self):
        e1 = Lam("x", Var("x"))
        e2 = Lam("y", Var("x"))  # x free here
        assert not alpha_equivalent(e1, e2)


class TestBasics:
    def test_literals(self):
        assert alpha_equivalent(Lit(3), Lit(3))
        assert not alpha_equivalent(Lit(3), Lit(4))
        assert not alpha_equivalent(Lit(1), Lit(1.0))
        assert not alpha_equivalent(Lit(True), Lit(1))

    def test_size_fast_path(self):
        assert not alpha_equivalent(Var("x"), App(Var("x"), Var("y")))

    def test_kind_mismatch(self):
        assert not alpha_equivalent(Lam("x", Var("x")), Let("x", Lit(1), Var("x")))

    def test_deep_chain(self):
        e1, e2 = Var("z"), Var("z")
        for i in range(20_000):
            e1 = Lam(f"a{i}", e1)
            e2 = Lam(f"b{i}", e2)
        assert alpha_equivalent(e1, e2)


class TestProperties:
    @given(exprs(max_size=80))
    def test_reflexive(self, e):
        assert alpha_equivalent(e, e)

    @given(exprs(max_size=80))
    def test_invariant_under_renaming(self, e):
        assert alpha_equivalent(e, alpha_rename(e))

    @given(exprs(max_size=50), exprs(max_size=50))
    def test_symmetric(self, e1, e2):
        assert alpha_equivalent(e1, e2) == alpha_equivalent(e2, e1)


class TestGroupExact:
    def test_groups(self):
        items = [
            parse(r"\x. x"),
            parse(r"\y. y"),
            parse(r"\x. x x"),
            Lit(1),
            Lit(1),
        ]
        groups = alpha_group_exact(items)
        as_sets = sorted(tuple(g) for g in groups)
        assert as_sets == [(0, 1), (2,), (3, 4)]

    def test_empty(self):
        assert alpha_group_exact([]) == []
