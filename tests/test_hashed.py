"""Tests for the fast Step-2 algorithm (Section 5).

The two-step correctness argument, made executable: the fast path must
produce *bit-identical* hashes to hashing the materialised Step-1
summaries, and those summaries are provably faithful (test_esummary /
test_rebuild).  Plus the end-to-end properties: alpha-invariance,
discrimination, the Lemma 6.1 op-count bound, and container behaviour.
"""

import math

import pytest
from hypothesis import given

from repro.core.combiners import HashCombiners
from repro.core.esummary import hash_esummary_tree, summarise_all_tagged
from repro.core.hashed import alpha_hash_all, alpha_hash_root, summarise_node
from repro.core.varmap import MapOpStats
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Lit, Var
from repro.lang.parser import parse
from repro.lang.traversal import preorder

from strategies import exprs


class TestStepAgreement:
    """Fast hashed path == hash of materialised Step-1 summary."""

    @given(exprs(max_size=60))
    def test_bit_identical_on_every_node(self, e):
        combiners = HashCombiners(seed=13)
        fast = alpha_hash_all(e, combiners)
        summaries = summarise_all_tagged(e)
        for node in preorder(e):
            expected = hash_esummary_tree(combiners, summaries[id(node)])
            assert fast.hash_of(node) == expected

    def test_bit_identical_at_16_bits(self):
        combiners = HashCombiners(bits=16, seed=13)
        e = random_expr(80, seed=4, p_let=0.3, p_lit=0.2)
        fast = alpha_hash_all(e, combiners)
        summaries = summarise_all_tagged(e)
        for node in preorder(e):
            expected = hash_esummary_tree(combiners, summaries[id(node)])
            assert fast.hash_of(node) == expected


class TestAlphaInvariance:
    @given(exprs(max_size=80))
    def test_renaming_preserves_root_hash(self, e):
        assert alpha_hash_root(e) == alpha_hash_root(alpha_rename(e))

    def test_paper_intro_lambdas(self):
        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        hashes = alpha_hash_all(e)
        assert hashes.hash_of(e.fn.arg) == hashes.hash_of(e.arg)

    def test_paper_intro_lets(self):
        e = parse(
            "(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)"
        )
        hashes = alpha_hash_all(e)
        let1 = e.fn.arg.arg  # ((mul (add a L1)) L2): L1 = fn.arg.arg
        let2 = e.arg
        assert let1.kind == "Let" and let2.kind == "Let"
        assert hashes.hash_of(let1) == hashes.hash_of(let2)

    def test_shadowing_handled(self):
        a = parse(r"\x. x (\x2. x2)")
        b = parse(r"\x. x (\x. x)")
        assert alpha_hash_root(a) == alpha_hash_root(b)


class TestDiscrimination:
    def test_free_names_distinguish(self):
        assert alpha_hash_root(parse(r"\x. x + y")) != alpha_hash_root(
            parse(r"\x. x + z")
        )

    def test_structure_distinguishes(self):
        assert alpha_hash_root(parse(r"\x. x (x x)")) != alpha_hash_root(
            parse(r"\x. (x x) x")
        )

    def test_add_x_y_vs_x_x(self):
        assert alpha_hash_root(parse("add x y")) != alpha_hash_root(
            parse("add x x")
        )

    def test_bound_vs_free(self):
        assert alpha_hash_root(parse(r"\x. x")) != alpha_hash_root(
            parse(r"\x. y")
        )

    def test_lam_vs_let(self):
        a = parse(r"(\x. x) 1")
        b = parse("let x = 1 in x")
        assert alpha_hash_root(a) != alpha_hash_root(b)

    @given(exprs(max_size=40), exprs(max_size=40))
    def test_distinct_iff_non_equivalent_at_64_bits(self, e1, e2):
        # At 64 bits the collision probability over this sample count is
        # ~2^-50, so equality of hashes == alpha-equivalence in practice.
        same_hash = alpha_hash_root(e1) == alpha_hash_root(e2)
        assert same_hash == alpha_equivalent(e1, e2)


class TestOpCounts:
    @pytest.mark.parametrize("shape", ["balanced", "unbalanced"])
    @pytest.mark.parametrize("n", [64, 512, 4096])
    def test_lemma_6_1_bound(self, shape, n):
        expr = random_expr(n, seed=n, shape=shape)
        stats = MapOpStats()
        alpha_hash_all(expr, stats=stats)
        # Lemma 6.1 merges (<= n log2 n with C=1) plus Lemma 6.2's one op
        # per Var/Lam/Let node (<= n).
        assert stats.merge_entries <= n * math.log2(n)
        assert stats.singleton + stats.remove <= n
        assert stats.total <= n * math.log2(n) + n

    def test_singleton_per_var(self):
        e = parse("f x y")
        stats = MapOpStats()
        alpha_hash_all(e, stats=stats)
        assert stats.singleton == 3

    def test_remove_per_binder(self):
        e = parse(r"\x. let y = x in y")
        stats = MapOpStats()
        alpha_hash_all(e, stats=stats)
        assert stats.remove == 2


class TestContainer:
    def test_hash_of_foreign_node_raises(self):
        hashes = alpha_hash_all(parse("a b"))
        with pytest.raises(KeyError):
            hashes.hash_of(Var("a"))

    def test_items_yields_every_occurrence(self):
        e = parse("f x x")
        hashes = alpha_hash_all(e)
        items = list(hashes.items())
        assert len(items) == e.size
        x_hashes = {h for _, node, h in items if getattr(node, "name", "") == "x"}
        assert len(x_hashes) == 1

    def test_root_hash(self):
        e = parse("a b")
        hashes = alpha_hash_all(e)
        assert hashes.root_hash == hashes.hash_of(e)

    def test_len(self):
        e = parse("a b c")
        assert len(alpha_hash_all(e)) == e.size

    def test_getitem_alias(self):
        e = parse("a")
        hashes = alpha_hash_all(e)
        assert hashes[e] == hashes.hash_of(e)

    def test_summaries_require_flag(self):
        e = parse("a")
        with pytest.raises(ValueError):
            alpha_hash_all(e).summary_of(e)
        kept = alpha_hash_all(e, keep_summaries=True)
        summary = kept.summary_of(e)
        assert summary.top == kept.root_hash
        assert summary.varmap_len == 1

    def test_summarise_node_helper(self):
        e = parse(r"\x. x + y")
        summary = summarise_node(e)
        assert summary.varmap_len == 2  # add, y

    def test_shared_node_objects_are_safe(self):
        # the alpha hash of a subtree is context-independent, so a
        # shared subtree object gets one consistent hash.
        shared = parse(r"\x. x + q")
        tree = App(App(Var("f"), shared), shared)
        hashes = alpha_hash_all(tree)
        assert hashes.hash_of(shared) == alpha_hash_root(shared)


class TestScale:
    def test_deep_unbalanced(self):
        e = random_expr(50_000, seed=9, shape="unbalanced")
        hashes = alpha_hash_all(e)
        assert len(hashes) == 50_000

    def test_deep_manual_chain(self):
        e = Var("z")
        for i in range(30_000):
            e = Lam(f"v{i}", e) if i % 2 else App(e, Lit(i))
        assert alpha_hash_root(e) is not None


class TestLitCacheBitExactness:
    """The literal-hash cache must key on bit patterns, not == (PR 3).

    ``hash_lit`` distinguishes -0.0 from 0.0 (IEEE bit patterns), while
    ``-0.0 == 0.0`` as a dict key: a value-keyed cache would make a
    literal's hash depend on hashing *history*.
    """

    def test_negative_zero_vs_zero_order_independent(self):
        tree_pos_first = App(Lit(0.0), Lit(-0.0))
        tree_neg_first = App(Lit(-0.0), Lit(0.0))
        a = alpha_hash_all(tree_pos_first)
        b = alpha_hash_all(tree_neg_first)
        assert a.hash_of(tree_pos_first.fn) == b.hash_of(tree_neg_first.arg)
        assert a.hash_of(tree_pos_first.arg) == b.hash_of(tree_neg_first.fn)
        assert a.hash_of(tree_pos_first.fn) != a.hash_of(tree_pos_first.arg)

    def test_in_tree_matches_standalone(self):
        tree = App(Lit(0.0), Lit(-0.0))
        hashes = alpha_hash_all(tree)
        assert hashes.hash_of(tree.arg) == alpha_hash_root(Lit(-0.0))

    def test_store_corpus_matches_fresh_and_parallel(self):
        from repro.store import ExprStore, parallel_hash_corpus

        corpus = [Lit(0.0), Lit(-0.0), App(Lit(0.0), Lit(-0.0))]
        fresh = [alpha_hash_root(e) for e in corpus]
        assert ExprStore().hash_corpus(corpus) == fresh
        assert parallel_hash_corpus(corpus, workers=2) == fresh
        store = ExprStore()
        assert store.intern(Lit(0.0)) != store.intern(Lit(-0.0))
