"""Tests for e-summary rendering and the Figure 1 harness."""

from repro.core.esummary import summarise_all_naive, summarise_naive, summarise_tagged
from repro.core.position_tree import PTBoth, PTHere, PTJoin, PTLeftOnly, PTRightOnly
from repro.core.render import render_esummary, render_postree, render_structure
from repro.evalharness.fig1 import FIGURE1_SOURCE, main, run_fig1
from repro.lang.parser import parse


class TestRenderPostree:
    def test_here(self):
        assert render_postree(PTHere) == "{here}"

    def test_absent(self):
        assert render_postree(None) == "(absent)"

    def test_paths(self):
        tree = PTBoth(PTRightOnly(PTHere), PTHere)
        assert render_postree(tree) == "{LR,R}"

    def test_deep_paths(self):
        tree = PTLeftOnly(PTLeftOnly(PTRightOnly(PTHere)))
        assert render_postree(tree) == "{LLR}"

    def test_tagged_form(self):
        tree = PTJoin(5, None, PTHere)
        assert render_postree(tree) == "join@5(big=_, small=*)"

    def test_tagged_nested(self):
        tree = PTJoin(7, PTHere, PTJoin(3, None, PTHere))
        text = render_postree(tree)
        assert "join@7" in text and "join@3" in text


class TestRenderStructure:
    def test_figure1_root(self):
        summary = summarise_naive(parse(FIGURE1_SOURCE))
        text = render_structure(summary.structure)
        # the paper's Figure 1: x occurs at LL and R of the body.
        assert text == "(lam {LL,R} (app (lam {R} (app <v> <v>)) <v>))"

    def test_let_and_lit(self):
        summary = summarise_naive(parse("let a = 1 in a"))
        text = render_structure(summary.structure)
        assert text == "(let {here} <1> <v>)"

    def test_tagged_structure_renders(self):
        summary = summarise_tagged(parse("f (g x)"))
        assert "(app " in render_structure(summary.structure)


class TestRenderESummary:
    def test_varmap_lines_sorted(self):
        summary = summarise_naive(parse("x b"))
        text = render_esummary(summary)
        assert text.index("b ->") < text.index("x ->")

    def test_empty_map(self):
        summary = summarise_naive(parse(r"\x. x"))
        assert "(empty)" in render_esummary(summary)


class TestFig1Harness:
    def test_covers_every_subexpression(self):
        expr = parse(FIGURE1_SOURCE)
        text = run_fig1()
        assert text.count("Step-2 hash:") == expr.size

    def test_identical_subterms_share_hashes(self):
        # the two x occurrences in the figure get the same hash line.
        text = run_fig1()
        hash_lines = [
            line.strip() for line in text.splitlines() if "Step-2 hash" in line
        ]
        assert len(hash_lines) != len(set(hash_lines))

    def test_custom_expression(self):
        text = run_fig1(r"\y. y")
        assert "(lam {here} <v>)" in text

    def test_cli(self, capsys):
        assert main([]) == 0
        assert "input expression" in capsys.readouterr().out

    def test_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["fig1"]) == 0
        capsys.readouterr()
