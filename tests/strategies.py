"""Hypothesis strategies for expression generation.

Two complementary strategies:

* :func:`expr_skeletons` + :func:`realise` -- a genuinely structural
  strategy (hypothesis can shrink it): a nameless skeleton is drawn
  recursively, then names are assigned scope-correctly, with variable
  leaves choosing among in-scope binders (or free names when the draw
  demands it / nothing is in scope).
* :func:`seeded_exprs` -- drives the library's own generator with drawn
  (size, seed, shape, ...) parameters; covers the exact distributions
  the benchmarks use.

Both yield well-formed expressions with unique binders available via
:func:`repro.lang.names.uniquify_binders` where a test requires it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["expr_skeletons", "realise", "structural_exprs", "seeded_exprs", "exprs"]

_FREE_NAMES = ("f", "g", "h")


def expr_skeletons(max_leaves: int = 25) -> st.SearchStrategy:
    """Nameless expression skeletons as nested tuples."""
    leaf = st.one_of(
        st.tuples(st.just("var"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("lit"), st.integers(min_value=-5, max_value=5)),
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(st.just("lam"), children),
            st.tuples(st.just("app"), children, children),
            st.tuples(st.just("let"), children, children),
        ),
        max_leaves=max_leaves,
    )


def realise(skeleton: tuple) -> Expr:
    """Assign scope-correct names to a skeleton (iterative)."""
    counter = 0
    scope: list[str] = []
    results: list[Expr] = []
    stack: list[tuple[str, object]] = [("visit", skeleton)]
    while stack:
        op, payload = stack.pop()
        if op == "bind":
            scope.append(payload)  # type: ignore[arg-type]
            continue
        if op == "unbind":
            scope.pop()
            continue
        if op == "build":
            kind, binder = payload  # type: ignore[misc]
            if kind == "lam":
                results.append(Lam(binder, results.pop()))
            elif kind == "app":
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
            continue
        node = payload
        assert isinstance(node, tuple)
        tag = node[0]
        if tag == "var":
            index = node[1]
            if scope and index < 2 * len(scope):
                results.append(Var(scope[index % len(scope)]))
            else:
                results.append(Var(_FREE_NAMES[index % len(_FREE_NAMES)]))
        elif tag == "lit":
            results.append(Lit(node[1]))
        elif tag == "lam":
            counter += 1
            binder = f"b{counter}"
            stack.append(("build", ("lam", binder)))
            stack.append(("unbind", None))
            stack.append(("visit", node[1]))
            stack.append(("bind", binder))
        elif tag == "app":
            stack.append(("build", ("app", None)))
            stack.append(("visit", node[2]))
            stack.append(("visit", node[1]))
        else:
            assert tag == "let"
            counter += 1
            binder = f"b{counter}"
            stack.append(("build", ("let", binder)))
            stack.append(("unbind", None))
            stack.append(("visit", node[2]))
            stack.append(("bind", binder))
            stack.append(("visit", node[1]))
    assert len(results) == 1
    return results[0]


def structural_exprs(max_leaves: int = 25) -> st.SearchStrategy[Expr]:
    """Shrinkable expressions via skeleton realisation."""
    return expr_skeletons(max_leaves).map(realise)


def seeded_exprs(
    min_size: int = 1, max_size: int = 120
) -> st.SearchStrategy[Expr]:
    """Expressions from the library's benchmark generator."""
    return st.builds(
        random_expr,
        size=st.integers(min_size, max_size),
        seed=st.integers(0, 2**20),
        shape=st.sampled_from(("balanced", "unbalanced")),
        p_lam=st.floats(0.2, 0.8),
        p_let=st.sampled_from((0.0, 0.3)),
        p_lit=st.sampled_from((0.0, 0.2)),
    )


def exprs(max_size: int = 120) -> st.SearchStrategy[Expr]:
    """The default mixed strategy used across the property suite."""
    return st.one_of(structural_exprs(), seeded_exprs(max_size=max_size))
