"""Tests for the algorithm registry (Table 1 metadata)."""

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER, get_algorithm
from repro.lang.parser import parse


class TestContents:
    def test_table1_rows_present(self):
        assert TABLE1_ORDER == ("structural", "debruijn", "locally_nameless", "ours")
        for name in TABLE1_ORDER:
            assert name in ALGORITHMS

    def test_appendix_variant_registered(self):
        assert "ours_lazy" in ALGORITHMS

    def test_paper_complexities(self):
        assert ALGORITHMS["structural"].paper_complexity == "O(n)"
        assert ALGORITHMS["debruijn"].paper_complexity == "O(n log n)"
        assert ALGORITHMS["locally_nameless"].paper_complexity == "O(n^2 log n)"
        assert ALGORITHMS["ours"].paper_complexity == "O(n (log n)^2)"

    def test_correctness_flags_match_table1(self):
        flags = {
            name: (alg.true_positives, alg.true_negatives)
            for name, alg in ALGORITHMS.items()
        }
        assert flags["structural"] == (True, False)
        assert flags["debruijn"] == (False, False)
        assert flags["locally_nameless"] == (True, True)
        assert flags["ours"] == (True, True)

    def test_correct_property(self):
        assert ALGORITHMS["ours"].correct
        assert not ALGORITHMS["structural"].correct
        assert not ALGORITHMS["debruijn"].correct


class TestInterface:
    def test_callable(self):
        e = parse("a b")
        hashes = ALGORITHMS["ours"](e)
        assert hashes.root_hash is not None

    def test_custom_combiners_passed_through(self):
        from repro.core.combiners import HashCombiners

        e = parse("a b")
        c16 = HashCombiners(bits=16, seed=1)
        for algorithm in ALGORITHMS.values():
            assert 0 <= algorithm(e, c16).root_hash < (1 << 16)

    def test_get_algorithm(self):
        assert get_algorithm("ours").name == "ours"

    def test_get_algorithm_error_lists_options(self):
        with pytest.raises(KeyError, match="structural"):
            get_algorithm("nope")

    def test_all_annotate_every_node(self):
        e = parse(r"let a = f x in \y. a + y")
        for algorithm in ALGORITHMS.values():
            hashes = algorithm(e)
            assert len(list(hashes.items())) == e.size
