"""Unit tests for the hash-consed expression store."""

import pytest

from repro.apps.cse import cse
from repro.apps.sharing import share_alpha
from repro.cli import main as cli_main
from repro.core.combiners import HashCombiners
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.core.incremental import IncrementalHasher, ReplaceStats
from repro.gen.random_exprs import alpha_rename, random_balanced, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Lit, Var, syntactic_eq
from repro.lang.names import uniquify_binders
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.store import ExprStore, StoreCollisionError, StoreStats


def p(text: str):
    return uniquify_binders(parse(text))


class TestIntern:
    def test_alpha_variants_same_id(self):
        store = ExprStore()
        a = store.intern(p(r"\x. x + 7"))
        b = store.intern(p(r"\y. y + 7"))
        assert a == b
        assert len(store) > 0
        assert store.stats.hits >= 1

    def test_distinct_classes_distinct_ids(self):
        store = ExprStore()
        a = store.intern(p(r"\x. x + 7"))
        b = store.intern(p(r"\x. x + 8"))
        assert a != b

    def test_subexpressions_interned_along_the_way(self):
        store = ExprStore()
        store.intern(p("f (v + 7)"))
        inner = store.intern(p("v + 7"))
        assert store.size_of(inner) == parse("v + 7").size

    def test_intern_same_object_is_an_identity_hit(self):
        store = ExprStore()
        e = p("f x y")
        a = store.intern(e)
        hits_before = store.stats.hits
        assert store.intern(e) == a
        assert store.stats.hits == hits_before + 1

    def test_intern_many_collapses_duplicates(self):
        store = ExprStore()
        e = p(r"\x. x + 1")
        ids = store.intern_many([e, p(r"\y. y + 1"), p(r"\z. z + 2")])
        assert ids[0] == ids[1] != ids[2]

    def test_canonical_expr_is_alpha_equivalent(self):
        store = ExprStore()
        e = p(r"pair (\x. x + 7) (\y. y + 7)")
        root = store.expr_of(store.intern(e))
        assert alpha_equivalent(root, e)

    def test_canonical_expr_is_a_shared_dag(self):
        store = ExprStore()
        e = p(r"pair (\x. x + 7) (\y. y + 7)")
        root = store.expr_of(store.intern(e))
        assert root.fn.arg is root.arg

    def test_entry_metadata(self):
        store = ExprStore()
        e = p(r"\x. x + 7")
        entry = store.entry(store.intern(e))
        assert entry.kind == "Lam"
        assert entry.size == e.size
        assert len(entry.children) == 1
        assert store.entry(entry.children[0]).kind == "App"

    def test_lookup_hash(self):
        store = ExprStore()
        e = p("v + 7")
        node_id = store.intern(e)
        assert store.lookup_hash(alpha_hash_root(e)) == node_id
        assert store.lookup_hash(12345) is None
        assert store.hash_of(node_id) == alpha_hash_root(e)

    def test_interning_canonical_expr_is_free(self):
        store = ExprStore()
        node_id = store.intern(p(r"\x. x + 7"))
        canonical = store.expr_of(node_id)
        hashed_before = store.stats.hashed_nodes
        assert store.intern(canonical) == node_id
        assert store.stats.hashed_nodes == hashed_before


class TestHashing:
    def test_hash_expr_matches_fresh(self):
        store = ExprStore()
        e = p(r"let a = v + 1 in (\x. x + a) a")
        assert store.hash_expr(e) == alpha_hash_root(e)

    def test_hash_corpus_matches_fresh(self):
        store = ExprStore()
        corpus = [random_expr(80, seed=s, p_let=0.3, p_lit=0.1) for s in range(6)]
        corpus += corpus[:3]  # literal repeats
        assert store.hash_corpus(corpus) == [
            alpha_hash_root(e) for e in corpus
        ]
        assert store.stats.hit_rate > 0

    def test_hashes_view_matches_fresh_per_node(self):
        store = ExprStore()
        e = random_expr(120, seed=11, p_let=0.3)
        view = store.hashes(e)
        fresh = alpha_hash_all(e)
        for _, node, value in fresh.items():
            assert view.hash_of(node) == value

    def test_memoization_skips_shared_subtrees(self):
        store = ExprStore()
        sub = random_balanced(100, seed=3)
        store.hash_expr(sub)
        hashed_before = store.stats.hashed_nodes
        store.hash_expr(App(sub, Lit(1)))
        # only the new App and Lit were summarised
        assert store.stats.hashed_nodes == hashed_before + 2
        assert store.stats.memo_skipped_nodes >= sub.size

    def test_custom_combiners(self):
        combiners = HashCombiners(bits=32, seed=99)
        store = ExprStore(combiners)
        e = p(r"\x. f x")
        assert store.hash_expr(e) == alpha_hash_root(e, combiners)

    def test_memo_limit_flush_keeps_answers_correct(self):
        store = ExprStore(memo_limit=10)
        exprs = [random_expr(60, seed=s) for s in range(4)]
        for e in exprs:
            assert store.hash_expr(e) == alpha_hash_root(e)
            assert store.intern(e) in store

    def test_clear_memo(self):
        store = ExprStore()
        e = p("f x")
        store.hash_expr(e)
        assert store.cached_top(e) is not None
        store.clear_memo()
        assert store.cached_top(e) is None
        assert store.hash_expr(e) == alpha_hash_root(e)

    def test_prune_memo_keeps_reachable_drops_rest(self):
        store = ExprStore()
        a = p("f x")
        b = p("g y")
        store.hash_expr(a)
        store.hash_expr(b)
        dropped = store.prune_memo([a])
        assert dropped == b.size
        assert store.cached_top(a) is not None
        assert store.cached_top(b) is None
        assert store.hash_expr(b) == alpha_hash_root(b)

    def test_hashes_view_correct_after_memo_flush_between_interns(self):
        # regression: canonical-record seeding must not claim subtree
        # coverage the memo no longer has (previously a raw KeyError)
        store = ExprStore()
        store.intern(p("v + 1"))
        store.intern(p("w + 2"))
        store.clear_memo()
        new_id = store.intern(p("(v + 1) * (w + 2)"))
        canonical = store.expr_of(new_id)
        view = store.hashes(canonical)
        fresh = alpha_hash_all(canonical)
        for _, node, value in fresh.items():
            assert view.hash_of(node) == value
        assert store.intern(canonical) == new_id


class TestLRU:
    def test_bounded_table(self):
        # capacity must exceed one tree's DAG closure (live roots pin
        # their children); beyond that the LRU bound holds
        store = ExprStore(max_entries=40)
        for s in range(12):
            store.intern(random_expr(30, seed=s))
        assert len(store) <= 40 + 1  # fresh root may be protected
        assert store.stats.evictions > 0

    def test_single_tree_larger_than_capacity_stays_whole(self):
        # pinning wins over the bound: the last interned tree's DAG
        # survives intact even when it alone exceeds max_entries
        store = ExprStore(max_entries=4)
        e = random_expr(30, seed=0)
        node_id = store.intern(e)
        assert node_id in store
        for entry in store.entries():
            for kid in entry.children:
                assert kid in store

    def test_children_of_live_entries_are_pinned(self):
        store = ExprStore(max_entries=6)
        for s in range(8):
            store.intern(random_expr(25, seed=s))
        for entry in store.entries():
            for kid in entry.children:
                assert kid in store

    def test_refcounts_consistent(self):
        store = ExprStore(max_entries=6)
        for s in range(8):
            store.intern(random_expr(25, seed=s))
        counts = {entry.node_id: 0 for entry in store.entries()}
        for entry in store.entries():
            for kid in entry.children:
                counts[kid] += 1
        for entry in store.entries():
            assert entry.refcount == counts[entry.node_id]

    def test_reinterning_after_eviction(self):
        store = ExprStore(max_entries=4)
        e = p(r"\x. x + 7")
        store.intern(e)
        for s in range(8):
            store.intern(random_expr(20, seed=s))
        # whether or not e survived, interning again must work and agree
        # with the hash key
        node_id = store.intern(e)
        assert store.lookup_hash(alpha_hash_root(e)) == node_id

    def test_touch_on_hit_protects_hot_entries(self):
        store = ExprStore(max_entries=4)
        hot = p("1 + 2")
        store.intern(hot)
        for s in range(12):
            store.intern(random_expr(8, seed=s, p_lit=0.5))
            store.intern(hot)  # keep it recent
        assert store.lookup_hash(alpha_hash_root(hot)) is not None

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            ExprStore(max_entries=0)


class TestCollisionGuard:
    def test_collision_detected_or_absorbed_at_tiny_width(self):
        # At 8 bits collisions are certain over a few hundred interns.
        # Cross-kind/size collisions must raise StoreCollisionError
        # (never silently conflate); same-shape collisions are beyond
        # the cheap guard and simply conflate, as documented.
        store = ExprStore(HashCombiners(bits=8, seed=1))
        saw_collision_error = False
        try:
            for s in range(120):
                store.intern(random_expr(1 + s % 17, seed=1000 + s, p_lit=0.3))
        except StoreCollisionError:
            saw_collision_error = True
        assert saw_collision_error or store.stats.hits > 0


class TestStatsShape:
    def test_store_stats_dict_shape(self):
        store = ExprStore()
        store.intern(p("f (v + 1) (v + 1)"))
        d = store.stats.as_dict()
        for key in (
            "hits",
            "misses",
            "memo_hits",
            "hashed_nodes",
            "memo_skipped_nodes",
            "evictions",
            "hit_rate",
            "intern_hit_rate",
            "touched_nodes",
        ):
            assert key in d

    def test_replace_stats_dict_shape(self):
        stats = ReplaceStats(
            path_nodes=2, path_map_entries=5, subtree_nodes=3, unchanged_nodes=7
        )
        d = stats.as_dict()
        assert d["touched_nodes"] == 5
        assert d["store_memo_nodes"] == 0

    def test_common_touched_nodes_key(self):
        # the satellite contract: both stats kinds report touched-node
        # counts under the same key, so harnesses can assert uniformly
        store = ExprStore()
        e = p("f (v + 1)")
        store.intern(e)
        replace = ReplaceStats(1, 2, 3, 4).as_dict()
        assert {"touched_nodes"} <= set(store.stats.as_dict()) & set(replace)

    def test_fresh_store_rates_never_divide_by_zero(self):
        # regression: on a store that has done no work at all, both
        # rate properties (and the dict/repr that evaluate them) must
        # return 0.0 rather than raising ZeroDivisionError
        stats = ExprStore().stats
        assert stats.hit_rate == 0.0
        assert stats.intern_hit_rate == 0.0
        d = stats.as_dict()
        assert d["hit_rate"] == 0.0 and d["intern_hit_rate"] == 0.0
        assert "hit_rate=0.0" in repr(stats)

    def test_fresh_session_stats_never_divide_by_zero(self):
        from repro.api import Session

        stats = Session().stats()
        assert stats["store"]["hit_rate"] == 0.0
        assert stats["store"]["intern_hit_rate"] == 0.0

    def test_repr_matches_dict(self):
        stats = StoreStats(hits=3, misses=1)
        text = repr(stats)
        assert text.startswith("StoreStats(")
        assert "hits=3" in text and "misses=1" in text
        inc = ReplaceStats(1, 2, 3, 4)
        assert repr(inc).startswith("ReplaceStats(")
        assert "touched_nodes=" in repr(inc)


class TestConsumers:
    def test_share_alpha_with_shared_store(self):
        store = ExprStore()
        r1 = share_alpha(p(r"\x. x + 7"), store=store)
        r2 = share_alpha(p(r"\y. y + 7"), store=store)
        # both calls resolve to the same canonical object
        assert r1.root is r2.root

    def test_cse_with_explicit_store_matches_default(self):
        e = p("(a + (v + 7)) * (v + 7)")
        store = ExprStore()
        with_store = cse(e, store=store)
        default = cse(e)
        assert pretty(with_store.expr) == pretty(default.expr)
        assert store.stats.hashed_nodes > 0

    def test_cse_store_combiners_mismatch_rejected(self):
        store = ExprStore(HashCombiners(bits=32, seed=5))
        with pytest.raises(ValueError):
            cse(p("v + 1"), combiners=HashCombiners(), store=store)

    def test_cse_rounds_reuse_the_memo(self):
        e = p("(f (a + (v + 7)) (v + 7)) * (g (a + (v + 7)) (b + (w + 9)) (b + (w + 9)))")
        store = ExprStore()
        result = cse(e, store=store)
        assert len(result.rounds) >= 2
        # later rounds must hit the memo for off-spine subtrees
        assert store.stats.memo_skipped_nodes > 0

    def test_incremental_with_store_cold_and_warm(self):
        e = uniquify_binders(random_expr(200, seed=5, p_let=0.3))
        store = ExprStore()
        store.hashes(e)
        inc = IncrementalHasher(e, store=store)
        assert inc.root_hash == alpha_hash_root(e)
        replacement = p("qq + 1")
        store.hash_expr(replacement)
        stats = inc.replace((0,), replacement)
        assert stats.store_memo_nodes == replacement.size
        fresh = alpha_hash_all(inc.expr)
        for node, value in inc.iter_hashes():
            assert value == fresh.hash_of(node)

    def test_incremental_store_combiners_mismatch_rejected(self):
        store = ExprStore(HashCombiners(bits=32, seed=5))
        with pytest.raises(ValueError):
            IncrementalHasher(p("f x"), combiners=HashCombiners(), store=store)

    def test_incremental_navigation_into_collapsed_subtree(self):
        e = uniquify_binders(random_expr(150, seed=9, p_let=0.2))
        store = ExprStore()
        store.hashes(e)  # warm: the whole tree collapses on construction
        inc = IncrementalHasher(e, store=store)
        fresh = alpha_hash_all(e)
        deep = (0, 1) if len(e.children()) > 1 else (0,)
        node = e
        for index in deep:
            node = node.children()[index]
        assert inc.hash_at(deep) == fresh.hash_of(node)
        inc.replace(deep, Lit(42))
        assert inc.root_hash == alpha_hash_root(inc.expr)

    def test_incremental_iter_hashes_after_memo_flush(self):
        e = uniquify_binders(random_expr(80, seed=13))
        store = ExprStore()
        store.hashes(e)
        inc = IncrementalHasher(e, store=store)
        store.clear_memo()  # collapsed annotations must self-expand
        fresh = alpha_hash_all(e)
        for node, value in inc.iter_hashes():
            assert value == fresh.hash_of(node)


class TestCli:
    @pytest.fixture()
    def corpus_files(self, tmp_path):
        a = tmp_path / "a.lam"
        a.write_text("(a + (v + 7)) * (v + 7)\n")
        b = tmp_path / "b.lam"
        b.write_text(r"pair (\x. x + 7) (\y. y + 7)" + "\n")
        return [str(a), str(b)]

    def test_store_command(self, capsys, corpus_files):
        assert cli_main(["store", *corpus_files]) == 0
        out = capsys.readouterr().out
        assert "canonical entries" in out
        assert "hit-rate" in out

    def test_store_command_json(self, capsys, corpus_files):
        import json

        assert cli_main(["store", "--json", *corpus_files]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["files"] == 2
        assert report["entries"] > 0
        assert report["hits"] + report["misses"] > 0

    def test_store_command_bounded(self, capsys, corpus_files):
        assert cli_main(["store", "--max-entries", "4", *corpus_files]) == 0
        assert "eviction" in capsys.readouterr().out

    def test_help_mentions_store(self, capsys):
        cli_main([])
        assert "store" in capsys.readouterr().out


class TestSharingParity:
    def test_share_alpha_still_beats_syntactic(self):
        from repro.apps.sharing import share_syntactic

        e = p(r"pair (\x. x + 7) (\y. y + 7)")
        assert share_alpha(e).unique_nodes < share_syntactic(e).unique_nodes

    def test_share_alpha_result_syntactic_shape(self):
        e = p("g (v + 1) (v + 1)")
        result = share_alpha(e)
        assert syntactic_eq(result.root, e)
        assert result.sharing_ratio > 1.0
