"""Differential fuzzing across the three hashing implementations.

The satellite contract: apply random rewrite sequences and assert that
:class:`IncrementalHasher` results, from-scratch :class:`AlphaHashes`,
and store-memoized hashes all agree at every step.  The hypothesis
variant is shrinkable (a failing rewrite sequence minimises to a small
script); the seeded walk variant runs longer deterministic sequences.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.gen.random_exprs import random_expr
from repro.lang.names import NameSupply, all_names, uniquify_binders
from repro.lang.traversal import preorder_with_paths
from repro.store import ExprStore

from strategies import expr_skeletons, realise, structural_exprs


def _fresh_replacement(skeleton, current):
    """Realise a drawn skeleton, with binders fresh for ``current``."""
    replacement = realise(skeleton)
    supply = NameSupply(reserved=all_names(current) | all_names(replacement))
    return uniquify_binders(replacement, supply)


def assert_all_agree(inc: IncrementalHasher, store: ExprStore) -> None:
    fresh = alpha_hash_all(inc.expr, inc.combiners)
    assert inc.root_hash == fresh.root_hash
    assert store.hash_expr(inc.expr) == fresh.root_hash
    store_view = store.hashes(inc.expr)
    for node, value in inc.iter_hashes():
        assert value == fresh.hash_of(node)
        assert store_view.hash_of(node) == fresh.hash_of(node)


class TestHypothesisRewrites:
    @settings(max_examples=40)
    @given(
        structural_exprs(max_leaves=12),
        st.lists(
            st.tuples(st.integers(0, 2**16), expr_skeletons(max_leaves=5)),
            min_size=1,
            max_size=6,
        ),
    )
    def test_rewrite_sequence_agrees_everywhere(self, base, script):
        base = uniquify_binders(base)
        store = ExprStore()
        inc = IncrementalHasher(base, store=store)
        assert_all_agree(inc, store)
        for path_pick, skeleton in script:
            paths = [path for path, _ in preorder_with_paths(inc.expr)]
            path = paths[path_pick % len(paths)]
            inc.replace(path, _fresh_replacement(skeleton, inc.expr))
            assert_all_agree(inc, store)


class TestSeededWalks:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_long_walk(self, seed):
        rng = random.Random(seed)
        base = uniquify_binders(
            random_expr(150, seed=seed, p_let=0.3, p_lit=0.1)
        )
        store = ExprStore()
        inc = IncrementalHasher(base, store=store)
        for step in range(25):
            paths = [path for path, _ in preorder_with_paths(inc.expr)]
            path = rng.choice(paths)
            replacement = random_expr(
                rng.randint(1, 20), seed=rng.randrange(2**20), p_let=0.3
            )
            supply = NameSupply(
                reserved=all_names(inc.expr) | all_names(replacement)
            )
            inc.replace(path, uniquify_binders(replacement, supply))
            fresh_root = alpha_hash_all(inc.expr).root_hash
            assert inc.root_hash == fresh_root
            assert store.hash_expr(inc.expr) == fresh_root
        assert_all_agree(inc, store)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_walk_with_lru_store(self, seed):
        # a bounded store behind the hasher must not change any answer
        rng = random.Random(seed)
        base = uniquify_binders(random_expr(100, seed=seed, p_let=0.2))
        store = ExprStore(max_entries=64, memo_limit=3000)
        inc = IncrementalHasher(base, store=store)
        for _ in range(12):
            paths = [path for path, _ in preorder_with_paths(inc.expr)]
            path = rng.choice(paths)
            replacement = random_expr(rng.randint(1, 12), seed=rng.randrange(2**20))
            supply = NameSupply(
                reserved=all_names(inc.expr) | all_names(replacement)
            )
            replacement = uniquify_binders(replacement, supply)
            store.intern(replacement)  # exercise intern + eviction paths too
            inc.replace(path, replacement)
            assert inc.root_hash == alpha_hash_all(inc.expr).root_hash
        assert_all_agree(inc, store)
