"""Parallel corpus engine: serial/parallel differential + determinism.

The engine's contract is *bit-identity*: ``hash_corpus(workers=N)``
must agree hash-for-hash, position-for-position with ``workers=1`` over
any corpus -- random, adversarial, duplicate-heavy, or degenerate-deep
-- in both pool flavours.  The 1k mixed-corpus differential below is
the PR-3 satellite contract; the rest pins the engine's mechanics
(deterministic chunking, dedup, store stat folding, worker merge).
"""

import random

import pytest

from repro.api import HashRequest, InternRequest, Session
from repro.core.combiners import HashCombiners
from repro.gen.adversarial import adversarial_pair
from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Lam, Var
from repro.store import (
    ExprStore,
    ShardedExprStore,
    parallel_hash_corpus,
    parallel_intern_corpus,
    resolve_workers,
)
from repro.store.parallel import _chunk_ranges, _dedup


def mixed_corpus(n_items: int, seed: int = 5, size: int = 50):
    """Random + adversarial generators with object-identity duplicates:
    the satellite's "1k mixed corpus" diet."""
    rng = random.Random(seed)
    corpus = []
    while len(corpus) < n_items:
        roll = rng.random()
        if roll < 0.2 and corpus:
            corpus.append(rng.choice(corpus))
        elif roll < 0.4:
            a, b = adversarial_pair(size, seed=rng.randrange(1 << 30))
            corpus.extend((a, b))
        else:
            corpus.append(
                random_expr(
                    size,
                    rng=rng,
                    shape=rng.choice(("balanced", "unbalanced")),
                    p_let=0.25,
                    p_lit=0.15,
                )
            )
    return corpus[:n_items]


class TestDifferential:
    """The satellite contract: workers=4 == workers=1, bit for bit."""

    @pytest.fixture(scope="class")
    def corpus_1k(self):
        return mixed_corpus(1000)

    @pytest.fixture(scope="class")
    def serial_hashes(self, corpus_1k):
        return Session().execute(HashRequest(corpus_1k, workers=1))

    def test_process_workers_bit_identical(self, corpus_1k, serial_hashes):
        assert (
            Session().execute(HashRequest(corpus_1k, workers=4))
            == serial_hashes
        )

    def test_thread_workers_bit_identical(self, corpus_1k, serial_hashes):
        assert (
            Session().execute(HashRequest(corpus_1k, workers=4, mode="thread"))
            == serial_hashes
        )

    def test_parallel_runs_are_deterministic(self, corpus_1k):
        first = parallel_hash_corpus(corpus_1k, workers=3)
        second = parallel_hash_corpus(corpus_1k, workers=3)
        assert first == second

    def test_worker_count_never_changes_results(self, corpus_1k, serial_hashes):
        for workers in (2, 3, 5):
            assert (
                parallel_hash_corpus(corpus_1k[:200], workers=workers)
                == serial_hashes[:200]
            )

    def test_nondefault_combiners(self):
        corpus = mixed_corpus(60, seed=8)
        combiners = HashCombiners(bits=32, seed=123)
        serial = [
            ExprStore(HashCombiners(bits=32, seed=123)).hash_expr(e)
            for e in corpus
        ]
        assert (
            parallel_hash_corpus(corpus, combiners=combiners, workers=3)
            == serial
        )


class TestEngineMechanics:
    def test_chunk_ranges_partition_exactly(self):
        for n_items in (0, 1, 7, 100, 1001):
            for n_chunks in (1, 3, 8, 200):
                spans = _chunk_ranges(n_items, n_chunks)
                covered = [i for a, b in spans for i in range(a, b)]
                assert covered == list(range(n_items))

    def test_dedup_maps_every_position(self):
        a, b = Var("x"), Var("y")
        uniq, positions = _dedup([a, b, a, a, b])
        assert uniq == [a, b]
        assert positions == [0, 1, 0, 0, 1]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            parallel_hash_corpus([Var("x")], workers=2, mode="fiber")

    def test_workers_one_uses_store_serially(self):
        store = ExprStore()
        corpus = mixed_corpus(20)
        result = parallel_hash_corpus(corpus, workers=1, store=store)
        assert result == ExprStore().hash_corpus(corpus)
        assert store.stats.hashed_nodes > 0

    def test_warm_store_answers_locally(self):
        store = ExprStore()
        corpus = mixed_corpus(30)
        store.hash_corpus(corpus)
        hashed_before = store.stats.hashed_nodes
        result = parallel_hash_corpus(corpus, workers=4, store=store)
        assert result == ExprStore().hash_corpus(corpus)
        # every unique object was memoised: nothing left to fan out
        assert store.stats.hashed_nodes == hashed_before

    def test_worker_counters_fold_into_store(self):
        store = ExprStore()
        corpus = mixed_corpus(40)
        parallel_hash_corpus(corpus, workers=3, store=store)
        # the delegated hashing work is visible in the parent's stats
        assert store.stats.hashed_nodes > 0

    def test_deep_corpus_fork_mode(self):
        """Fork workers inherit the corpus; nothing pickles the trees,
        so degenerate depth parallelises (pickle would recurse)."""
        deep = Var("x")
        for i in range(5000):
            deep = Lam(f"x{i}", deep)
        corpus = [deep] + mixed_corpus(10)
        assert parallel_hash_corpus(corpus, workers=2) == ExprStore(
        ).hash_corpus(corpus)


class TestParallelIntern:
    def test_classes_match_serial(self):
        corpus = mixed_corpus(200)
        serial_ids = ExprStore().intern_many(corpus)
        store = ShardedExprStore(num_shards=4)
        par_ids = parallel_intern_corpus(corpus, store, workers=3)
        serial_part = [serial_ids.index(i) for i in serial_ids]
        par_part = [par_ids.index(i) for i in par_ids]
        assert par_part == serial_part

    def test_every_id_resolves_in_parent(self):
        corpus = mixed_corpus(100)
        store = ShardedExprStore(num_shards=4)
        ids = parallel_intern_corpus(corpus, store, workers=3)
        for expr, node_id in zip(corpus, ids):
            assert store.hash_of(node_id) == ExprStore().hash_expr(expr)

    def test_flat_store_target(self):
        corpus = mixed_corpus(80)
        store = ExprStore()
        ids = parallel_intern_corpus(corpus, store, workers=3)
        expected = ExprStore()
        expected_ids = expected.intern_many(corpus)
        assert [ids.index(i) for i in ids] == [
            expected_ids.index(i) for i in expected_ids
        ]
        assert len(store) == len(expected)


class TestSessionIntegration:
    def test_session_configured_workers(self):
        corpus = mixed_corpus(60)
        serial = Session().hash_corpus(corpus)
        session = Session(workers=3)
        assert session.hash_corpus(corpus) == serial

    def test_session_sharded_store_with_workers(self):
        corpus = mixed_corpus(60)
        session = Session(num_shards=4, workers=3)
        assert isinstance(session.store, ShardedExprStore)
        assert session.hash_corpus(corpus) == Session().hash_corpus(corpus)
        ids = session.intern_many(corpus)
        assert len(ids) == len(corpus)
        stats = session.stats()
        assert stats["num_shards"] == 4
        assert sum(stats["shard_sizes"]) == stats["entries"]

    def test_session_intern_many_workers_matches_serial_classes(self):
        corpus = mixed_corpus(80)
        serial_ids = Session().intern_many(corpus)
        par_ids = Session(num_shards=4).execute(
            InternRequest(corpus, workers=3)
        )
        assert [par_ids.index(i) for i in par_ids] == [
            serial_ids.index(i) for i in serial_ids
        ]

    def test_non_store_backend_stays_serial_and_correct(self):
        corpus = mixed_corpus(20)
        session = Session(backend="debruijn", workers=4)
        assert session.hash_corpus(corpus) == Session(
            backend="debruijn"
        ).hash_corpus(corpus)

    def test_sharded_session_snapshot_round_trip(self, tmp_path):
        corpus = mixed_corpus(40)
        session = Session(num_shards=4)
        hashes = session.hash_corpus(corpus)
        session.intern_many(corpus)
        path = str(tmp_path / "sharded_session.snap")
        session.save(path)
        restored = Session.load(path)
        assert isinstance(restored.store, ShardedExprStore)
        assert restored.store.num_shards == 4
        assert restored.hash_corpus(corpus) == hashes

    def test_invalid_parallel_mode_rejected(self):
        with pytest.raises(ValueError):
            Session(parallel_mode="fiber")


class TestAppleToAppleAdversarial:
    def test_adversarial_pairs_stay_distinct_in_parallel(self):
        """Near-colliding pairs must come back distinct and identical to
        the serial path (the engine must not perturb hashing)."""
        pairs = [adversarial_pair(120, seed=s) for s in range(20)]
        corpus = [e for pair in pairs for e in pair]
        hashes = parallel_hash_corpus(corpus, workers=4)
        assert hashes == ExprStore().hash_corpus(corpus)
        for left, right in zip(hashes[::2], hashes[1::2]):
            assert left != right
