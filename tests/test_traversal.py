"""Unit tests for iterative traversal utilities."""

import pytest
from hypothesis import given

from repro.lang.expr import App, Lam, Let, Lit, Var, syntactic_eq
from repro.lang.parser import parse
from repro.lang.traversal import (
    all_paths,
    count_nodes,
    max_depth,
    postorder,
    preorder,
    preorder_with_paths,
    rebuild_bottom_up,
    replace_at,
    subexpression_at,
)
from repro.lang.traversal import identity_rebuild

from strategies import exprs


def sample():
    return parse(r"let a = f x in \y. a + y")


class TestOrders:
    def test_preorder_root_first(self):
        e = sample()
        nodes = list(preorder(e))
        assert nodes[0] is e
        assert len(nodes) == e.size

    def test_preorder_left_to_right(self):
        e = App(Var("l"), Var("r"))
        kinds = [n.name for n in preorder(e) if isinstance(n, Var)]
        assert kinds == ["l", "r"]

    def test_postorder_children_first(self):
        e = sample()
        seen: set[int] = set()
        for node in postorder(e):
            for child in node.children():
                assert id(child) in seen
            seen.add(id(node))
        assert len(seen) == e.size

    def test_postorder_root_last(self):
        e = sample()
        assert list(postorder(e))[-1] is e

    @given(exprs(max_size=60))
    def test_orders_cover_all_nodes(self, e):
        assert len(list(preorder(e))) == e.size
        assert len(list(postorder(e))) == e.size


class TestPaths:
    def test_root_path(self):
        e = sample()
        paths = dict(preorder_with_paths(e))
        assert paths[()] is e

    def test_path_lookup_consistency(self):
        e = sample()
        for path, node in preorder_with_paths(e):
            assert subexpression_at(e, path) is node

    def test_all_paths_count(self):
        e = sample()
        assert len(all_paths(e)) == e.size

    def test_let_child_indices(self):
        e = Let("x", Var("a"), Var("b"))
        assert subexpression_at(e, (0,)).name == "a"  # type: ignore[union-attr]
        assert subexpression_at(e, (1,)).name == "b"  # type: ignore[union-attr]

    def test_invalid_path(self):
        with pytest.raises(IndexError):
            subexpression_at(Var("x"), (0,))


class TestReplaceAt:
    def test_replace_root(self):
        e = sample()
        new = Var("z")
        assert replace_at(e, (), new) is new

    def test_replace_shares_off_path(self):
        e = App(App(Var("a"), Var("b")), Var("c"))
        out = replace_at(e, (1,), Var("z"))
        assert out.fn is e.fn  # type: ignore[union-attr]
        assert out.arg.name == "z"  # type: ignore[union-attr]

    def test_replace_in_lam(self):
        e = Lam("x", Var("x"))
        out = replace_at(e, (0,), Lit(1))
        assert isinstance(out, Lam) and out.binder == "x"
        assert isinstance(out.body, Lit)

    def test_replace_let_bound_and_body(self):
        e = Let("x", Var("a"), Var("b"))
        out0 = replace_at(e, (0,), Lit(9))
        out1 = replace_at(e, (1,), Lit(9))
        assert isinstance(out0.bound, Lit)  # type: ignore[union-attr]
        assert isinstance(out1.body, Lit)  # type: ignore[union-attr]

    def test_replace_preserves_original(self):
        e = sample()
        before = e.size
        replace_at(e, (0,), Var("z"))
        assert e.size == before

    def test_bad_child_index(self):
        with pytest.raises(IndexError):
            replace_at(Lam("x", Var("x")), (1,), Var("y"))

    @given(exprs(max_size=50))
    def test_replace_identity(self, e):
        for path, node in preorder_with_paths(e):
            out = replace_at(e, path, node)
            assert syntactic_eq(out, e)
            break  # one path per example keeps this fast


class TestRecomputation:
    def test_count_nodes_matches_size(self):
        e = sample()
        assert count_nodes(e) == e.size

    def test_max_depth_matches_depth(self):
        e = sample()
        assert max_depth(e) == e.depth

    @given(exprs(max_size=80))
    def test_cached_invariants(self, e):
        assert count_nodes(e) == e.size
        assert max_depth(e) == e.depth

    def test_deep_chain(self):
        e = Var("x")
        for i in range(30_000):
            e = Lam(f"v{i}", e)
        assert count_nodes(e) == 30_001
        assert max_depth(e) == 30_001


class TestRebuildBottomUp:
    def test_identity_rebuild(self):
        e = sample()
        out = rebuild_bottom_up(e, identity_rebuild)
        assert out is not e
        assert syntactic_eq(out, e)

    def test_custom_make_sees_children(self):
        e = parse("f (g x)")
        sizes = []

        def make(node, kids):
            sizes.append((node.kind, len(kids)))
            return identity_rebuild(node, kids)

        rebuild_bottom_up(e, make)
        assert ("App", 2) in sizes
        assert ("Var", 0) in sizes

    def test_deep_chain(self):
        e = Var("x")
        for i in range(20_000):
            e = Lam(f"v{i}", e)
        out = rebuild_bottom_up(e, identity_rebuild)
        assert out.size == e.size
