"""Robustness and failure-injection tests.

Libraries get misused: fed garbage text, handed summaries they did not
make, asked to rebuild nonsense.  These tests pin the failure behaviour
to *clear exceptions* rather than silent corruption, and fuzz the
surface syntax front end against crashes.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.esummary import ESummary, rebuild_naive, rebuild_tagged
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.core.position_tree import PTHere
from repro.core.structure import SVar
from repro.core.varmap import VarMapTree
from repro.lang.expr import App, Expr, Lam, Var
from repro.lang.parser import ParseError, parse
from repro.lang.pretty import pretty


class TestParserFuzz:
    @given(st.text(max_size=60))
    def test_parse_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises ParseError -- nothing
        else (no internal KeyErrors, no RecursionError on flat text)."""
        try:
            result = parse(text)
        except ParseError:
            return
        assert isinstance(result, Expr)

    @given(
        st.text(
            alphabet="\\xy. ()+*-/01 letin",
            max_size=80,
        )
    )
    def test_parse_syntaxish_soup(self, text):
        try:
            result = parse(text)
        except ParseError:
            return
        # whatever parses must round-trip
        assert isinstance(parse(pretty(result)), Expr)

    def test_very_long_flat_input(self):
        source = "f " + " ".join(f"x{i}" for i in range(5000))
        expr = parse(source)
        assert expr.size == 2 * 5000 + 1


class TestUnicodeNames:
    def test_unicode_identifiers_hash(self):
        # names are hashed through UTF-8; exercise multi-byte paths.
        a = Lam("x", App(Var("x"), Var("переменная")))
        b = Lam("y", App(Var("y"), Var("переменная")))
        c = Lam("y", App(Var("y"), Var("変数")))
        assert alpha_hash_root(a) == alpha_hash_root(b)
        assert alpha_hash_root(a) != alpha_hash_root(c)

    def test_unicode_binder_names(self):
        from repro.lang.alpha import alpha_equivalent

        e = Lam("λx", Var("λx"))
        assert alpha_equivalent(e, Lam("z", Var("z")))
        assert alpha_hash_root(e) == alpha_hash_root(Lam("z", Var("z")))


class TestMalformedSummaries:
    def test_rebuild_var_with_wrong_map(self):
        bad = ESummary(SVar, VarMapTree.empty())
        with pytest.raises(ValueError):
            rebuild_naive(bad)
        with pytest.raises(ValueError):
            rebuild_tagged(bad)

    def test_rebuild_var_with_two_entries(self):
        bad = ESummary(SVar, VarMapTree({"a": PTHere, "b": PTHere}))
        with pytest.raises(ValueError):
            rebuild_naive(bad)


class TestApiMisuse:
    def test_hash_of_node_from_other_tree(self):
        hashes = alpha_hash_all(parse("a b"))
        with pytest.raises(KeyError):
            hashes.hash_of(parse("a b"))

    def test_incremental_bad_paths(self):
        from repro.core.incremental import IncrementalHasher
        from repro.lang.expr import Lit

        hasher = IncrementalHasher(parse("f x"))
        with pytest.raises(IndexError):
            hasher.replace((0, 0, 0), Lit(1))
        with pytest.raises(IndexError):
            hasher.replace((2,), Lit(1))

    def test_zipper_misuse(self):
        from repro.lang.zipper import Zipper, ZipperError

        z = Zipper.from_expr(parse("f x"))
        with pytest.raises(ZipperError):
            z.down(0).down(0)  # Var has no children
        with pytest.raises(ZipperError):
            z.down(-1)

    def test_generator_bad_params(self):
        from repro.gen.random_exprs import random_expr

        with pytest.raises(ValueError):
            random_expr(-3)

    def test_cse_on_single_node(self):
        from repro.apps.cse import cse

        result = cse(Var("x"))
        assert result.final_size == 1


class TestExtremeShapes:
    def test_left_application_spine(self):
        e: Expr = Var("f")
        for i in range(20_000):
            e = App(e, Var("f"))
        assert alpha_hash_root(e) is not None

    def test_alternating_let_chain(self):
        from repro.lang.expr import Let, Lit

        e: Expr = Lit(0)
        for i in range(20_000):
            e = Let(f"v{i}", Lit(i), e)
        hashes = alpha_hash_all(e)
        assert len(hashes) == e.size

    def test_every_node_same_free_var(self):
        # maximally shared single free variable: maps stay size 1.
        e: Expr = Var("x")
        for _ in range(5_000):
            e = App(e, Var("x"))
        from repro.core.varmap import MapOpStats

        stats = MapOpStats()
        alpha_hash_all(e, stats=stats)
        # all merges move a singleton map: exactly one entry per App.
        assert stats.merge_entries == 5_000

    def test_wide_and_shallow(self):
        from repro.workloads.common import sum_chain

        e = sum_chain([Var(f"v{i}") for i in range(4_000)])
        hashes = alpha_hash_all(e)
        assert hashes.root_hash is not None
