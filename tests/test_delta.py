"""Tests for incremental snapshot deltas (ISSUE 7).

A delta ships only the canonical entries interned after a version
stamp; applied to a replica seeded from a full snapshot it must
reproduce the source store bit-identically -- same classes, same
hashes, same ids -- while being idempotent under replay and loud about
truncation, tampering and mismatched stores.
"""

import json
import random

import pytest

from repro.core.combiners import HashCombiners
from repro.gen.random_exprs import random_expr
from repro.store import (
    DELTA_FORMAT,
    ExprStore,
    ShardedExprStore,
    SnapshotError,
    apply_delta_bytes,
    delta_to_bytes,
    snapshot_from_bytes,
    snapshot_to_bytes,
)


def corpus(n, seed=29, size=30):
    rng = random.Random(seed)
    return [random_expr(size, rng=rng, p_let=0.2, p_lit=0.2) for _ in range(n)]


def make_store(layout: str):
    combiners = HashCombiners(bits=64, seed=7)
    if layout == "sharded":
        return ShardedExprStore(combiners, num_shards=4)
    return ExprStore(combiners)


def entry_map(store):
    return {e.node_id: (e.hash, e.kind, e.size, e.children)
            for e in store.entries()}


@pytest.fixture(params=["flat", "sharded"])
def layout(request):
    return request.param


class TestVersionStamps:
    def test_version_monotonic_per_fresh_class(self, layout):
        store = make_store(layout)
        assert store.version == 0
        for expr in corpus(20):
            store.intern(expr)
        assert store.version == len(store)
        versions = sorted(e.version for e in store.entries())
        assert versions == list(range(1, len(store) + 1))

    def test_rehash_does_not_advance_version(self, layout):
        store = make_store(layout)
        items = corpus(10)
        for expr in items:
            store.intern(expr)
        before = store.version
        for expr in items:
            store.intern(expr)
        assert store.version == before

    def test_snapshot_roundtrip_preserves_versions(self, layout):
        store = make_store(layout)
        for expr in corpus(15):
            store.intern(expr)
        restored, _header = snapshot_from_bytes(snapshot_to_bytes(store))
        assert restored.version == store.version
        assert {e.node_id: e.version for e in restored.entries()} == {
            e.node_id: e.version for e in store.entries()
        }


class TestDeltaRoundTrip:
    def test_empty_delta(self, layout):
        store = make_store(layout)
        for expr in corpus(8):
            store.intern(expr)
        replica, _ = snapshot_from_bytes(snapshot_to_bytes(store))
        report = apply_delta_bytes(
            replica, delta_to_bytes(store, store.version)
        )
        assert report == {
            "applied": 0, "skipped": 0, "version": store.version
        }

    def test_since_zero_equals_full_snapshot(self, layout):
        store = make_store(layout)
        for expr in corpus(25):
            store.intern(expr)
        # An empty same-shape store at version 0 catches up from nothing.
        replica = make_store(layout)
        report = apply_delta_bytes(replica, delta_to_bytes(store, 0))
        assert report["applied"] == len(store)
        assert replica.version == store.version
        assert entry_map(replica) == entry_map(store)

    def test_incremental_catch_up_is_bit_identical(self, layout):
        store = make_store(layout)
        first, second = corpus(20, seed=3), corpus(20, seed=4)
        for expr in first:
            store.intern(expr)
        replica, _ = snapshot_from_bytes(snapshot_to_bytes(store))
        stamp = replica.version
        for expr in second:
            store.intern(expr)
        delta = delta_to_bytes(store, stamp)
        seeded = len(replica)
        report = apply_delta_bytes(replica, delta)
        assert report["applied"] == len(store) - seeded
        assert replica.version == store.version
        assert entry_map(replica) == entry_map(store)
        # The caught-up replica hashes and interns like the source:
        # every second-wave root resolves to the same id, no growth.
        before = len(replica)
        for expr in second:
            assert replica.intern(expr) == store.intern(expr)
        assert len(replica) == before

    def test_delta_smaller_than_full_snapshot(self, layout):
        store = make_store(layout)
        for expr in corpus(40, seed=5):
            store.intern(expr)
        stamp = store.version
        for expr in corpus(6, seed=6):
            store.intern(expr)
        assert len(delta_to_bytes(store, stamp)) < len(snapshot_to_bytes(store))

    def test_idempotent_replay(self, layout):
        store = make_store(layout)
        for expr in corpus(12):
            store.intern(expr)
        replica = make_store(layout)
        delta = delta_to_bytes(store, 0)
        first = apply_delta_bytes(replica, delta)
        second = apply_delta_bytes(replica, delta)
        assert second["applied"] == 0
        assert second["skipped"] == first["applied"]
        assert entry_map(replica) == entry_map(store)

    def test_overlapping_deltas(self, layout):
        store = make_store(layout)
        for expr in corpus(10, seed=8):
            store.intern(expr)
        replica = make_store(layout)
        apply_delta_bytes(replica, delta_to_bytes(store, 0))
        early_stamp = store.version // 2
        for expr in corpus(10, seed=9):
            store.intern(expr)
        # Window (early_stamp, version] overlaps what the replica holds:
        # the overlap verifies-and-skips, the tail applies.
        report = apply_delta_bytes(replica, delta_to_bytes(store, early_stamp))
        assert report["skipped"] > 0 and report["applied"] > 0
        assert entry_map(replica) == entry_map(store)


class TestDeltaValidation:
    def _pair(self, layout):
        store = make_store(layout)
        for expr in corpus(10):
            store.intern(expr)
        replica, _ = snapshot_from_bytes(snapshot_to_bytes(store))
        for expr in corpus(5, seed=11):
            store.intern(expr)
        return store, replica

    def test_since_ahead_of_history_rejected(self, layout):
        store = make_store(layout)
        store.intern(corpus(1)[0])
        with pytest.raises(SnapshotError, match="outside this store's history"):
            delta_to_bytes(store, store.version + 1)
        with pytest.raises(SnapshotError, match="outside this store's history"):
            delta_to_bytes(store, -1)

    def test_truncated_delta_rejected(self, layout):
        store, replica = self._pair(layout)
        delta = delta_to_bytes(store, replica.version)
        with pytest.raises(SnapshotError):
            apply_delta_bytes(replica, delta[: len(delta) // 2])

    def test_tampered_body_rejected(self, layout):
        store, replica = self._pair(layout)
        delta = delta_to_bytes(store, replica.version)
        head, _, body = delta.partition(b"\n")
        flipped = bytes([body[0] ^ 1]) + body[1:]
        with pytest.raises(SnapshotError, match="checksum"):
            apply_delta_bytes(replica, head + b"\n" + flipped)

    def test_garbage_header_rejected(self, layout):
        _store, replica = self._pair(layout)
        with pytest.raises(SnapshotError):
            apply_delta_bytes(replica, b"not json\n")

    def test_wrong_format_rejected(self, layout):
        store, replica = self._pair(layout)
        with pytest.raises(SnapshotError, match="not a repro-store-delta"):
            apply_delta_bytes(replica, snapshot_to_bytes(store))

    def test_combiner_mismatch_rejected(self, layout):
        store, _replica = self._pair(layout)
        delta = delta_to_bytes(store, 0)
        other = (
            ShardedExprStore(HashCombiners(bits=64, seed=99), num_shards=4)
            if layout == "sharded"
            else ExprStore(HashCombiners(bits=64, seed=99))
        )
        with pytest.raises(SnapshotError, match="seed"):
            apply_delta_bytes(other, delta)

    def test_store_shape_mismatch_rejected(self, layout):
        store, _replica = self._pair(layout)
        delta = delta_to_bytes(store, 0)
        other = (
            ExprStore(HashCombiners(bits=64, seed=7))
            if layout == "sharded"
            else ShardedExprStore(HashCombiners(bits=64, seed=7), num_shards=4)
        )
        with pytest.raises(SnapshotError, match="shard"):
            apply_delta_bytes(other, delta)

    def test_gap_rejected(self, layout):
        store, replica = self._pair(layout)
        # Emit a window starting beyond what the replica has seen.
        gap_delta = delta_to_bytes(store, replica.version + 2)
        with pytest.raises(SnapshotError, match="missing in between"):
            apply_delta_bytes(replica, gap_delta)

    def test_present_entry_divergence_rejected(self, layout):
        store, replica = self._pair(layout)
        delta = delta_to_bytes(store, 0)
        head, _, body = delta.partition(b"\n")
        lines = body.decode("utf-8").splitlines()
        rec = json.loads(lines[0])
        rec["h"] ^= 1  # same id, different hash: a different store
        lines[0] = json.dumps(rec, separators=(",", ":"), sort_keys=True)
        new_body = ("\n".join(lines) + "\n").encode("utf-8")
        header = json.loads(head)
        import hashlib

        header["checksum"] = (
            "sha256:" + hashlib.sha256(new_body).hexdigest()
        )
        doc = (
            json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
            + b"\n"
            + new_body
        )
        with pytest.raises(SnapshotError):
            apply_delta_bytes(replica, doc)


class TestDeltaAccounting:
    def test_hash_only_traffic_between_stamps_is_invisible(self):
        # Hashing does not create entries, so a stamp window spanning
        # heavy hash traffic ships only the genuinely fresh classes.
        store = ExprStore(HashCombiners(bits=64, seed=7))
        base = corpus(10, seed=21)
        for expr in base:
            store.intern(expr)
        replica, _ = snapshot_from_bytes(snapshot_to_bytes(store))
        stamp = replica.version
        for expr in corpus(30, seed=22):
            store.hash_expr(expr)  # hashing only: no new entries
        for expr in corpus(8, seed=23):
            store.intern(expr)
        seeded = len(replica)
        report = apply_delta_bytes(replica, delta_to_bytes(store, stamp))
        assert report["applied"] == len(store) - seeded
        assert entry_map(replica) == entry_map(store)

    def test_delta_counts_fold_into_stats(self):
        store = ExprStore(HashCombiners(bits=64, seed=7))
        for expr in corpus(10, seed=31):
            store.intern(expr)
        replica = ExprStore(HashCombiners(bits=64, seed=7))
        report = apply_delta_bytes(replica, delta_to_bytes(store, 0))
        # Applied entries are accounted as misses: counters stay
        # conserved (sum of shard counters == store totals elsewhere).
        assert replica.stats.misses == report["applied"]

    def test_format_constant_in_header(self):
        store = ExprStore(HashCombiners(bits=64, seed=7))
        store.intern(corpus(1)[0])
        header = json.loads(delta_to_bytes(store, 0).partition(b"\n")[0])
        assert header["format"] == DELTA_FORMAT
        assert header["since"] == 0
        assert header["version"] == store.version
