"""Tests for the random/adversarial expression generators."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gen.adversarial import MIN_ADVERSARIAL_SIZE, adversarial_pair, seed_pair
from repro.gen.random_exprs import (
    alpha_rename,
    random_balanced,
    random_expr,
    random_unbalanced,
)
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Lam, Lit, Var, syntactic_eq
from repro.lang.names import free_vars, has_unique_binders
from repro.lang.traversal import preorder


class TestRandomExpr:
    @given(st.integers(1, 300), st.integers(0, 10**6))
    def test_exact_size_balanced(self, size, seed):
        assert random_expr(size, seed=seed, shape="balanced").size == size

    @given(st.integers(1, 300), st.integers(0, 10**6))
    def test_exact_size_unbalanced(self, size, seed):
        assert random_expr(size, seed=seed, shape="unbalanced").size == size

    @given(st.integers(1, 200), st.integers(0, 10**6))
    def test_unique_binders(self, size, seed):
        e = random_expr(size, seed=seed, p_let=0.3)
        assert has_unique_binders(e)

    def test_deterministic_per_seed(self):
        a = random_expr(137, seed=42)
        b = random_expr(137, seed=42)
        assert syntactic_eq(a, b)

    def test_different_seeds_differ(self):
        a = random_expr(137, seed=1)
        b = random_expr(137, seed=2)
        assert not syntactic_eq(a, b)

    def test_shapes_differ_in_depth(self):
        n = 4001
        balanced = random_balanced(n, seed=0)
        unbalanced = random_unbalanced(n, seed=0)
        assert balanced.depth < 80
        assert unbalanced.depth > n // 10

    def test_p_let_produces_lets(self):
        e = random_expr(500, seed=0, p_let=0.5)
        assert any(node.kind == "Let" for node in preorder(e))

    def test_p_let_zero_produces_none(self):
        e = random_expr(500, seed=0, p_let=0.0)
        assert not any(node.kind == "Let" for node in preorder(e))

    def test_p_lit_produces_literals(self):
        e = random_expr(500, seed=0, p_lit=0.5)
        assert any(isinstance(node, Lit) for node in preorder(e))

    def test_variables_are_scope_correct(self):
        # free variables must all come from the free pool
        from repro.gen.random_exprs import FREE_POOL

        e = random_expr(800, seed=3, p_let=0.2)
        assert free_vars(e) <= set(FREE_POOL)

    def test_rng_instance_accepted(self):
        rng = random.Random(5)
        e1 = random_expr(50, rng=rng)
        rng = random.Random(5)
        e2 = random_expr(50, rng=rng)
        assert syntactic_eq(e1, e2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_expr(0)
        with pytest.raises(ValueError):
            random_expr(5, shape="sideways")
        with pytest.raises(ValueError):
            random_expr(5, free_pool=())

    def test_tiny_sizes(self):
        assert random_expr(1, seed=0).size == 1
        e2 = random_expr(2, seed=0)
        assert e2.size == 2 and isinstance(e2, Lam)


class TestAlphaRename:
    @given(st.integers(2, 150), st.integers(0, 10**5))
    def test_equivalent_but_renamed(self, size, seed):
        e = random_expr(size, seed=seed)
        renamed = alpha_rename(e, seed=seed)
        assert alpha_equivalent(e, renamed)

    def test_binder_names_actually_change(self):
        e = random_expr(60, seed=1)  # guaranteed to contain binders
        renamed = alpha_rename(e)
        binders = {n.binder for n in preorder(e) if n.kind in ("Lam", "Let")}
        new_binders = {
            n.binder for n in preorder(renamed) if n.kind in ("Lam", "Let")
        }
        if binders:
            assert binders.isdisjoint(new_binders)

    def test_free_vars_preserved(self):
        e = random_expr(100, seed=2)
        assert free_vars(alpha_rename(e)) == free_vars(e)


class TestAdversarialPairs:
    def test_seed_pair_properties(self):
        e1, e2 = seed_pair()
        assert e1.size == e2.size == MIN_ADVERSARIAL_SIZE
        assert not alpha_equivalent(e1, e2)
        assert free_vars(e1) == free_vars(e2) == set()

    @given(st.integers(MIN_ADVERSARIAL_SIZE, 400), st.integers(0, 10**5))
    def test_exact_sizes_and_nonequivalence(self, size, seed):
        e1, e2 = adversarial_pair(size, seed=seed)
        assert e1.size == size and e2.size == size
        assert not alpha_equivalent(e1, e2)

    def test_identical_wrapping(self):
        e1, e2 = adversarial_pair(64, seed=9)
        # peel wrappers: they must match node-for-node until the seeds.
        a, b = e1, e2
        while a.size > MIN_ADVERSARIAL_SIZE:
            assert a.kind == b.kind
            if a.kind == "Lam":
                assert a.binder == b.binder
                a, b = a.body, b.body
            else:
                assert a.arg.name == b.arg.name  # same free var
                a, b = a.fn, b.fn
        assert syntactic_eq(a, seed_pair()[0])
        assert syntactic_eq(b, seed_pair()[1])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            adversarial_pair(4)

    def test_deterministic(self):
        a1, a2 = adversarial_pair(100, seed=3)
        b1, b2 = adversarial_pair(100, seed=3)
        assert syntactic_eq(a1, b1) and syntactic_eq(a2, b2)
