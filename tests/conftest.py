"""Shared fixtures and hypothesis settings for the test-suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.combiners import HashCombiners


def pytest_configure(config):
    """With ``REPRO_LOCKCHECK`` set, wrap every repro-created lock so
    the run doubles as a lock-order witness for ``repro lint``."""
    if os.environ.get("REPRO_LOCKCHECK"):
        from repro.testing import lockcheck

        lockcheck.install()


def pytest_unconfigure(config):
    if os.environ.get("REPRO_LOCKCHECK"):
        from repro.testing import lockcheck

        if lockcheck.active() is not None:
            out = os.environ.get(
                "REPRO_LOCKCHECK_OUT", "lockcheck-witness.json"
            )
            lockcheck.dump(out)
            lockcheck.uninstall()

# One moderate profile for CI; examples are deterministic via the
# derandomize-by-default database behaviour of hypothesis under pytest.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def combiners() -> HashCombiners:
    """The default 64-bit fixed-seed combiner family."""
    return HashCombiners()


@pytest.fixture(scope="session")
def combiners16() -> HashCombiners:
    """A 16-bit family (Appendix B width) for collision-prone tests."""
    return HashCombiners(bits=16, seed=7)
