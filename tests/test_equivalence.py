"""Tests for equivalence-class extraction (the library's headline API)."""

import pytest
from hypothesis import given

from repro.core.combiners import HashCombiners
from repro.core.equivalence import equivalence_classes, group_by_hash
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.lang.alpha import alpha_equivalent, alpha_group_exact
from repro.lang.debruijn import canonical_key
from repro.lang.parser import parse
from repro.lang.traversal import preorder

from strategies import exprs


class TestPaperExamples:
    def test_intro_lets(self):
        e = parse("(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)")
        classes = equivalence_classes(e, min_size=2)
        reps = [c.representative for c in classes]
        assert any(r.kind == "Let" for r in reps)
        let_class = next(c for c in classes if c.representative.kind == "Let")
        assert let_class.count == 2

    def test_intro_lambdas(self):
        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        classes = equivalence_classes(e)
        lam_class = next(c for c in classes if c.representative.kind == "Lam")
        assert lam_class.count == 2

    def test_repeated_open_term(self):
        e = parse("(a + (v + 7)) * (v + 7)")
        classes = equivalence_classes(e, min_size=3)
        assert classes[0].count == 2
        assert classes[0].node_size == 5  # add v 7


class TestFilters:
    def test_min_count(self):
        e = parse("f x y")
        assert equivalence_classes(e, min_count=2) == []
        singles = equivalence_classes(e, min_count=1)
        assert len(singles) == e.size

    def test_min_size_drops_variables(self):
        e = parse("f x x")
        classes = equivalence_classes(e, min_size=2)
        assert classes == []
        with_vars = equivalence_classes(e, min_size=1)
        assert len(with_vars) == 1 and with_vars[0].count == 2

    def test_sorting_largest_first(self):
        e = parse("(g (v + 7)) + (g (v + 7)) + (v + 7)")
        classes = equivalence_classes(e, min_size=2)
        sizes = [c.node_size for c in classes]
        assert sizes == sorted(sizes, reverse=True)


class TestCorrectness:
    @given(exprs(max_size=60))
    def test_classes_match_exact_oracle(self, e):
        hashes = alpha_hash_all(e)
        nodes = list(preorder(e))
        # group indices by hash
        by_hash: dict[int, list[int]] = {}
        for i, node in enumerate(nodes):
            by_hash.setdefault(hashes.hash_of(node), []).append(i)
        hash_groups = sorted(sorted(g) for g in by_hash.values())
        exact_groups = sorted(sorted(g) for g in alpha_group_exact(nodes))
        assert hash_groups == exact_groups

    @given(exprs(max_size=50))
    def test_all_members_mutually_equivalent(self, e):
        for cls in equivalence_classes(e, min_size=1, min_count=2):
            rep = cls.representative
            for _, node in cls.occurrences[1:]:
                assert alpha_equivalent(rep, node)

    def test_occurrence_paths_resolve(self):
        from repro.lang.traversal import subexpression_at

        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        for cls in equivalence_classes(e):
            for path, node in cls.occurrences:
                assert subexpression_at(e, path) is node


class TestVerification:
    def _find_collision_seed(self):
        """Deterministically find two non-equivalent expressions whose
        8-bit hashes collide (they are abundant at width 8)."""
        combiners = HashCombiners(bits=8, seed=1)
        seen: dict[int, object] = {}
        from repro.gen.random_exprs import random_expr

        for trial in range(2000):
            e = random_expr(12 + trial % 9, seed=trial)
            value = alpha_hash_root(e, combiners)
            if value in seen and not alpha_equivalent(seen[value], e):
                return combiners, seen[value], e
            seen.setdefault(value, e)
        raise AssertionError("no collision found at 8 bits (unexpected)")

    def test_verify_splits_hash_collisions(self):
        from repro.lang.expr import App, Var

        combiners, e1, e2 = self._find_collision_seed()
        tree = App(App(Var("pairup"), e1), e2)
        # Without verification the colliding subtrees may be (wrongly)
        # grouped together; with verify=True each class is exact.
        verified = equivalence_classes(
            tree, combiners, min_count=1, min_size=1, verify=True
        )
        for cls in verified:
            assert cls.verified
            rep_key = canonical_key(cls.representative)
            for _, node in cls.occurrences:
                assert canonical_key(node) == rep_key

    def test_verified_flag_default_false(self):
        e = parse("f x x")
        for cls in equivalence_classes(e, min_size=1):
            assert not cls.verified


class TestGroupByHash:
    def test_groups_cover_all_occurrences(self):
        e = parse("f x x")
        hashes = alpha_hash_all(e)
        groups = group_by_hash(hashes)
        total = sum(len(g) for g in groups.values())
        assert total == e.size

    def test_reuse_precomputed_hashes(self):
        e = parse("f x x")
        hashes = alpha_hash_all(e)
        classes = equivalence_classes(e, hashes=hashes, min_size=1)
        assert classes and classes[0].count == 2


class TestClassAccessors:
    def test_properties(self):
        e = parse("g (v + 7) (v + 7)")
        cls = equivalence_classes(e, min_size=3)[0]
        assert cls.count == 2
        assert cls.node_size == 5
        assert cls.representative.kind == "App"
        assert cls.hash_value == alpha_hash_root(cls.representative)
