"""End-to-end integration tests: the full pipelines a downstream user
would run, stitched across modules."""

from repro.apps.cse import cse
from repro.apps.ml_graph import ast_to_graph, graph_stats
from repro.apps.sharing import share_alpha, share_syntactic
from repro.core.combiners import HashCombiners
from repro.core.equivalence import equivalence_classes
from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.lang.alpha import alpha_equivalent
from repro.lang.evaluator import evaluate
from repro.lang.names import has_unique_binders, uniquify_binders
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.traversal import preorder_with_paths
from repro.workloads.bert import build_bert
from repro.workloads.gmm import build_gmm
from repro.workloads.mnist_cnn import build_mnist_cnn


class TestCompilerPipeline:
    """parse -> uniquify -> hash -> find classes -> CSE -> evaluate."""

    PROGRAM = """
    # two alpha-equivalent blocks and one shared open term
    let scalea = (\\u. u * (c + 1)) base in
    let scaleb = (\\w. w * (c + 1)) base in
    scalea + scaleb + (c + 1)
    """

    def test_full_pipeline(self):
        expr = uniquify_binders(parse(self.PROGRAM))
        assert has_unique_binders(expr)

        classes = equivalence_classes(expr, min_size=4, verify=True)
        assert classes, "expected repeated blocks"

        env = {"c": 4, "base": 10}
        before = evaluate(expr, env)
        result = cse(expr)
        assert evaluate(result.expr, env) == before
        assert result.final_size < result.original_size

        # the CSE output parses back after printing
        reparsed = parse(pretty(result.expr))
        assert evaluate(reparsed, env) == before

    def test_pipeline_at_16_bits_with_verification(self):
        expr = uniquify_binders(parse(self.PROGRAM))
        combiners = HashCombiners(bits=16, seed=5)
        env = {"c": 4, "base": 10}
        result = cse(expr, combiners=combiners, verify_classes=True)
        assert evaluate(result.expr, env) == evaluate(expr, env)


class TestIncrementalWorkflow:
    """A rewrite loop keeping hashes live, as a compiler would."""

    def test_rewrite_loop(self):
        expr = uniquify_binders(parse("(a + (v + 7)) * (v + 7)"))
        hasher = IncrementalHasher(expr)
        initial = hasher.root_hash

        # rewrite one of the (v+7) occurrences to (v+8) and back
        paths = [
            p
            for p, node in preorder_with_paths(expr)
            if node.size == 5 and node.kind == "App"
        ]
        target = paths[-1]
        hasher.replace(target, parse("v + 8"))
        assert hasher.root_hash != initial
        hasher.replace(target, parse("v + 7"))
        assert hasher.root_hash == initial

    def test_incremental_feeds_equivalence_classes(self):
        expr = uniquify_binders(parse("g (v + 7) (w + 9)"))
        hasher = IncrementalHasher(expr)
        hasher.replace((1,), parse("v + 7"))
        classes = equivalence_classes(
            hasher.expr, min_size=3, hashes=hasher.hashes()
        )
        assert classes and classes[0].count == 2


class TestWorkloadPipelines:
    def test_bert_end_to_end(self):
        expr = build_bert(2)
        hashes = alpha_hash_all(expr)
        assert len(hashes) == expr.size
        classes = equivalence_classes(expr, min_size=4, hashes=hashes)
        assert classes
        stats = graph_stats(ast_to_graph(expr, min_class_size=4))
        assert stats.equality_edges > 0

    def test_cnn_cse_shrinks(self):
        expr = build_mnist_cnn()
        result = cse(expr, min_size=4)
        assert result.final_size < expr.size
        assert has_unique_binders(result.expr)

    def test_gmm_sharing(self):
        expr = build_gmm()
        syntactic = share_syntactic(expr)
        alpha = share_alpha(expr)
        assert alpha.unique_nodes < syntactic.unique_nodes < expr.size
        assert alpha_equivalent(alpha.root, expr)


class TestCrossAlgorithmComparison:
    def test_table1_story_on_one_expression(self):
        """One expression exercising all four algorithms' behaviours."""
        from repro.baselines.registry import ALGORITHMS

        e = parse(r"\t. foo (\x. x + t) (\y. \x2. x2 + t)")
        lam1, lam2 = e.body.fn.arg, e.body.arg.body
        verdicts = {
            name: alg(e).hash_of(lam1) == alg(e).hash_of(lam2)
            for name, alg in ALGORITHMS.items()
        }
        assert verdicts == {
            "structural": False,
            "debruijn": False,
            "locally_nameless": True,
            "ours": True,
            "ours_lazy": True,
        }
