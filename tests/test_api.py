"""Tests for the ``repro.api`` facade: Session + unified backend registry."""

import pytest

from repro.api import (
    ABLATION_ORDER,
    BACKENDS,
    TABLE1_ORDER,
    FunctionBackend,
    HasherBackend,
    Session,
    SessionConfig,
    SessionError,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.parser import parse
from repro.lang.traversal import preorder


class TestRegistryCompleteness:
    def test_every_table1_row_registered(self):
        for name in TABLE1_ORDER:
            backend = get_backend(name)
            assert backend.kind == "table1"
            assert backend.algorithm is not None
            assert backend.algorithm.name == name

    def test_every_ablation_registered(self):
        assert {"always_left", "recompute_vm"} <= set(BACKENDS)
        assert get_backend("always_left").kind == "ablation"
        assert get_backend("recompute_vm").kind == "ablation"

    def test_lazy_variant_and_aliases(self):
        assert get_backend("ours_lazy").kind == "variant"
        assert get_backend("lazy") is get_backend("ours_lazy")
        assert get_backend("default") is get_backend("ours")

    def test_ablation_order_resolves(self):
        for name in ABLATION_ORDER:
            assert isinstance(get_backend(name), FunctionBackend)

    def test_unknown_backend_lists_options(self):
        with pytest.raises(KeyError, match="ours"):
            get_backend("nope")

    def test_only_ours_is_store_backed(self):
        assert [n for n, b in BACKENDS.items() if b.store_backed] == ["ours"]

    def test_backends_satisfy_protocol(self):
        for backend in BACKENDS.values():
            assert isinstance(backend, HasherBackend)

    def test_backend_names(self):
        names = backend_names()
        assert "ours" in names and "always_left" in names
        assert "lazy" not in names
        assert "lazy" in backend_names(include_aliases=True)

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(
                FunctionBackend(
                    name="ours",
                    label="dup",
                    kind="variant",
                    section="-",
                    store_backed=False,
                    run=lambda e, c=None: alpha_hash_all(e, c),
                )
            )

    def test_every_backend_reachable_via_session(self):
        e = parse(r"\x. foo (\y. y + x) (\z. z + x)")
        for name in BACKENDS:
            session = Session(backend=name)
            hashes = session.hashes(e)
            assert hashes.root_hash == session.hash(e)

    def test_every_backend_alpha_invariant_except_debruijn_probe(self):
        # every true-negative backend must collapse alpha-renamings
        e = random_expr(80, seed=3, p_let=0.2)
        renamed = alpha_rename(e, seed=9)
        assert not e is renamed
        for name in ("ours", "ours_lazy", "always_left", "recompute_vm",
                     "locally_nameless"):
            session = Session(backend=name)
            assert session.hash(e) == session.hash(renamed), name


class TestSessionHashing:
    def test_differential_against_alpha_hash_all(self):
        """Session.hashes(e) == alpha_hash_all(e), node for node."""
        session = Session()
        for seed in range(8):
            e = random_expr(150 + seed * 37, seed=seed, p_let=0.25)
            through_store = session.hashes(e)
            fresh = alpha_hash_all(e)
            for node in preorder(e):
                assert through_store.hash_of(node) == fresh.hash_of(node)

    def test_hash_corpus_matches_per_item(self):
        corpus = [random_expr(60, seed=i) for i in range(20)]
        expected = [alpha_hash_all(e).root_hash for e in corpus]
        assert Session().hash_corpus(corpus) == expected
        assert Session(use_store=False).hash_corpus(corpus) == expected

    def test_storeless_session_matches_store_backed(self):
        e = random_expr(200, seed=11)
        assert Session(use_store=False).hash(e) == Session().hash(e)

    def test_non_default_backend_bypasses_store(self):
        session = Session(backend="structural")
        e = random_expr(50, seed=2)
        session.hash(e)
        # the structural pass must not touch the store's hashing memo
        assert session.store is not None
        assert session.store.stats.hashed_nodes == 0

    def test_custom_bits_and_seed(self):
        e = random_expr(40, seed=5)
        narrow = Session(bits=16, seed=123)
        assert narrow.hash(e) < (1 << 16)
        assert narrow.hash(e) != Session(bits=16, seed=124).hash(e)

    def test_config_object_and_overrides_conflict(self):
        with pytest.raises(TypeError):
            Session(SessionConfig(), backend="ours")


class TestSessionApps:
    def test_intern_requires_store(self):
        session = Session(use_store=False)
        with pytest.raises(SessionError, match="use_store"):
            session.intern(parse("a b"))
        with pytest.raises(SessionError, match="use_store"):
            session.save("/tmp/never-written.snap")

    def test_intern_collapses_alpha_equivalent(self):
        session = Session()
        a = session.intern(parse(r"\x. x + 7"))
        b = session.intern(parse(r"\y. y + 7"))
        assert a == b

    def test_cse_through_session(self):
        session = Session()
        expr = parse(r"(a + (v + 7)) * (v + 7)")
        result = session.cse(expr)
        assert result.final_size < result.original_size
        assert session.store.stats.hashed_nodes > 0

    def test_share_single_and_corpus(self):
        session = Session()
        one = session.share(parse(r"foo (\x. x + 1) (\y. y + 1)"))
        assert one.sharing_ratio > 1.0
        many = session.share([parse(r"\x. x + 1"), parse(r"\q. q + 1")])
        assert len(many) == 2
        # corpus pooling: both items landed on the same canonical tree
        assert many[0].root is many[1].root

    def test_apps_session_kwarg(self):
        from repro.apps.cse import cse
        from repro.apps.sharing import share_alpha

        session = Session()
        expr = parse(r"(a + (v + 7)) * (v + 7)")
        assert cse(expr, session=session).final_size < expr.size
        assert share_alpha(expr, session=session).unique_nodes < expr.size
        with pytest.raises(ValueError, match="not both"):
            cse(expr, store=session.store, session=session)
        with pytest.raises(ValueError, match="not both"):
            share_alpha(expr, store=session.store, session=session)

    def test_ml_graph_session_kwarg(self):
        pytest.importorskip("networkx")
        from repro.apps.ml_graph import ast_to_graph, graph_stats

        session = Session()
        expr = parse(r"foo (\x. x + 7) (\y. y + 7)")
        stats = graph_stats(ast_to_graph(expr, session=session))
        assert stats.equality_edges >= 1
        with pytest.raises(ValueError, match="not both"):
            ast_to_graph(expr, combiners=session.combiners, session=session)

    def test_stats_shape(self):
        session = Session()
        session.hash(parse("a b"))
        stats = session.stats()
        assert stats["backend"] == "ours"
        assert stats["store_enabled"] is True
        assert "hit_rate" in stats["store"]
        storeless = Session(use_store=False).stats()
        assert storeless["store_enabled"] is False
        assert "store" not in storeless


class TestDeprecatedAblationRegistry:
    def test_shim_warns_and_matches_old_shape(self):
        import repro.evalharness.ablations as ablations

        with pytest.deprecated_call():
            variants = ablations.ABLATION_VARIANTS
        assert set(variants) == {"ours", "always_left", "recompute_vm", "lazy"}
        # the historical display labels survive the registry unification
        assert variants["ours"][0] == "Ours (full)"
        assert variants["lazy"][0] == "Appendix C variant"
        assert variants["always_left"][0] == "no smaller-subtree merge"
        assert variants["recompute_vm"][0] == "no XOR maintenance"
        e = parse(r"\x. x + 7")
        for _label, fn in variants.values():
            assert fn(e).root_hash is not None

    def test_unknown_attribute_still_raises(self):
        import repro.evalharness.ablations as ablations

        with pytest.raises(AttributeError):
            ablations.NOT_A_THING

    def test_api_internals_are_warning_free(self, recwarn):
        """Nothing inside repro.api may route through deprecated shims."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Session(backend="always_left")
            session.hash(parse(r"\x. x"))
            Session().hash_corpus([parse("a b"), parse("b a")])


class TestTable1ThroughRegistry:
    def test_run_table1_uses_unified_registry(self):
        from repro.evalharness.table1 import run_table1

        rows = run_table1(random_trials=2, seed=0)
        assert [r.name for r in rows] == list(TABLE1_ORDER)
        assert all(r.consistent for r in rows)

    def test_run_table1_rejects_metadata_free_backend(self):
        from repro.evalharness.table1 import run_table1

        with pytest.raises(ValueError, match="Table 1 metadata"):
            run_table1(algorithms=("always_left",), random_trials=0)
