"""Tests for the Table 1 baseline algorithms and their documented
failure modes (Sections 2.3-2.5)."""

from hypothesis import given

from repro.baselines.debruijn_hash import debruijn_hash_all
from repro.baselines.locally_nameless import locally_nameless_hash_all
from repro.baselines.structural import structural_hash_all
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Lam, Var, syntactic_eq
from repro.lang.parser import parse
from repro.lang.traversal import preorder

from strategies import exprs


class TestStructural:
    @given(exprs(max_size=50))
    def test_syntactic_equality_iff_equal_hash(self, e):
        hashes = structural_hash_all(e)
        nodes = list(preorder(e))
        for a in nodes[:10]:
            for b in nodes[:10]:
                assert (hashes.hash_of(a) == hashes.hash_of(b)) == syntactic_eq(
                    a, b
                )

    def test_false_negative_on_alpha_equivalent(self):
        # Section 2.2: map (\y.y+1) (map (\x.x+1) vs)
        e = parse(r"pair (\y. y + 1) (\x. x + 1)")
        hashes = structural_hash_all(e)
        assert hashes.hash_of(e.fn.arg) != hashes.hash_of(e.arg)

    def test_binder_names_in_hash(self):
        assert (
            structural_hash_all(Lam("x", Var("x"))).root_hash
            != structural_hash_all(Lam("y", Var("y"))).root_hash
        )

    def test_let_binder_in_hash(self):
        a = structural_hash_all(parse("let x = 1 in x")).root_hash
        b = structural_hash_all(parse("let y = 1 in y")).root_hash
        assert a != b


class TestDeBruijn:
    def test_paper_false_negative(self):
        # \t. foo (\x.x+t) (\y.\x.x+t): the two \x.x+t look different
        # because t's index differs.
        e = parse(r"\t. foo (\x. x + t) (\y. \x2. x2 + t)")
        lam1 = e.body.fn.arg
        lam2 = e.body.arg.body
        assert alpha_equivalent(lam1, lam2)
        hashes = debruijn_hash_all(e)
        assert hashes.hash_of(lam1) != hashes.hash_of(lam2)

    def test_paper_false_positive(self):
        # \t. foo (\x.t*(x+1)) (\y.\x.y*(x+1)): both become \.%1*(%0+1).
        e = parse(r"\t. foo (\x. t * (x + 1)) (\y. \x2. y * (x2 + 1))")
        sub1 = e.body.fn.arg
        sub2 = e.body.arg.body
        assert not alpha_equivalent(sub1, sub2)
        hashes = debruijn_hash_all(e)
        assert hashes.hash_of(sub1) == hashes.hash_of(sub2)

    @given(exprs(max_size=60))
    def test_whole_expression_hash_is_alpha_invariant(self, e):
        # At the ROOT the de Bruijn form is canonical, so root hashes are
        # alpha-invariant (the failures are at inner nodes only).
        assert (
            debruijn_hash_all(e).root_hash
            == debruijn_hash_all(alpha_rename(e)).root_hash
        )

    def test_free_variables_hash_by_name(self):
        assert (
            debruijn_hash_all(parse("x")).root_hash
            != debruijn_hash_all(parse("y")).root_hash
        )

    def test_deep_chain(self):
        e = random_expr(30_000, seed=1, shape="unbalanced")
        assert debruijn_hash_all(e).root_hash is not None


class TestLocallyNameless:
    def test_correct_on_paper_false_negative(self):
        e = parse(r"\t. foo (\x. x + t) (\y. \x2. x2 + t)")
        hashes = locally_nameless_hash_all(e)
        assert hashes.hash_of(e.body.fn.arg) == hashes.hash_of(e.body.arg.body)

    def test_correct_on_paper_false_positive(self):
        e = parse(r"\t. foo (\x. t * (x + 1)) (\y. \x2. y * (x2 + 1))")
        hashes = locally_nameless_hash_all(e)
        assert hashes.hash_of(e.body.fn.arg) != hashes.hash_of(e.body.arg.body)

    @given(exprs(max_size=45))
    def test_agrees_with_ours_on_grouping(self, e):
        ln = locally_nameless_hash_all(e)
        ours = alpha_hash_all(e)
        nodes = list(preorder(e))
        for a in nodes:
            for b in nodes[:8]:
                assert (ln.hash_of(a) == ln.hash_of(b)) == (
                    ours.hash_of(a) == ours.hash_of(b)
                )

    @given(exprs(max_size=60))
    def test_alpha_invariant_everywhere(self, e):
        renamed = alpha_rename(e)
        h1 = locally_nameless_hash_all(e)
        h2 = locally_nameless_hash_all(renamed)
        assert h1.root_hash == h2.root_hash

    def test_let_body_is_rehashed(self):
        a = locally_nameless_hash_all(parse("let u = q in u")).root_hash
        b = locally_nameless_hash_all(parse("let w = q in w")).root_hash
        assert a == b
        c = locally_nameless_hash_all(parse("let w = q in q")).root_hash
        assert a != c

    def test_deep_chain(self):
        # quadratic, so keep this modest -- but it must not recurse.
        e = random_expr(3_000, seed=2, shape="unbalanced")
        assert locally_nameless_hash_all(e).root_hash is not None
