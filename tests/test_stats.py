"""Tests for expression shape statistics."""

from hypothesis import given

from repro.lang.expr import Lam, Lit, Var
from repro.lang.parser import parse
from repro.lang.stats import describe, expr_stats

from strategies import exprs


class TestCounts:
    def test_simple(self):
        stats = expr_stats(parse(r"let a = f x in \y. a + y"))
        assert stats.size == 10
        assert stats.let_count == 1
        assert stats.lam_count == 1
        assert stats.binder_count == 2
        assert stats.lit_count == 0
        assert stats.free_var_count == 3  # f, x, add

    def test_lit_and_var(self):
        stats = expr_stats(parse("x + 1"))
        assert stats.var_count == 2  # add, x
        assert stats.lit_count == 1
        assert stats.app_count == 2

    def test_max_binder_depth(self):
        stats = expr_stats(parse(r"\a. \b. \c. a"))
        assert stats.max_binder_depth == 3

    def test_let_bound_outside_binder_scope(self):
        # the binder scopes over body only: bound side adds no nesting.
        stats = expr_stats(parse("let a = x in let b = a in b"))
        assert stats.max_binder_depth == 2

    @given(exprs(max_size=80))
    def test_kind_counts_partition_size(self, e):
        stats = expr_stats(e)
        total = (
            stats.var_count
            + stats.lit_count
            + stats.lam_count
            + stats.app_count
            + stats.let_count
        )
        assert total == stats.size == e.size
        assert stats.depth == e.depth


class TestDerived:
    def test_imbalance_chain(self):
        e = Var("x")
        for i in range(999):
            e = Lam(f"v{i}", e)
        stats = expr_stats(e)
        assert stats.imbalance == 1.0  # pure chain

    def test_imbalance_balanced(self):
        from repro.gen.random_exprs import random_balanced

        stats = expr_stats(random_balanced(4097, seed=1))
        assert stats.imbalance < 0.05

    def test_binder_density(self):
        stats = expr_stats(parse(r"\x. x"))
        assert stats.binder_density == 0.5

    def test_trivial(self):
        stats = expr_stats(Lit(1))
        assert stats.size == 1 and stats.imbalance == 1.0


class TestWorkloadProfiles:
    """The synthetic workloads must match the shape claims in their
    docstrings (deep let spines, binder-rich, plenty of repetition)."""

    def test_bert_is_let_dominated(self):
        from repro.workloads.bert import build_bert

        stats = expr_stats(build_bert(2))
        assert stats.let_count > 100
        assert stats.max_binder_depth > 100  # a deep ANF spine

    def test_cnn_profile(self):
        from repro.workloads.mnist_cnn import build_mnist_cnn

        stats = expr_stats(build_mnist_cnn())
        assert stats.lam_count >= 9  # one inlined activation per pixel
        assert stats.let_count >= 9

    def test_unbalanced_generator_profile(self):
        from repro.gen.random_exprs import random_unbalanced

        stats = expr_stats(random_unbalanced(8001, seed=2))
        assert stats.imbalance > 0.25


class TestDescribe:
    def test_renders(self):
        text = describe(parse(r"let a = f x in \y. a + y"))
        assert "10 nodes" in text
        assert "1 lets" in text
        assert "free variables" in text
