"""Unit tests for the hash-combiner infrastructure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.combiners import DEFAULT_SEED, HashCombiners, splitmix64


class TestDeterminism:
    def test_same_seed_same_hashes(self):
        a = HashCombiners(seed=123)
        b = HashCombiners(seed=123)
        assert a.combine("top", 1, 2) == b.combine("top", 1, 2)
        assert a.hash_name("hello") == b.hash_name("hello")

    def test_different_seeds_differ(self):
        a = HashCombiners(seed=1)
        b = HashCombiners(seed=2)
        assert a.combine("top", 1, 2) != b.combine("top", 1, 2)

    def test_default_seed_stable(self):
        assert HashCombiners().seed == DEFAULT_SEED & ((1 << 64) - 1)


class TestIndependence:
    def test_salts_differ_per_site(self):
        c = HashCombiners()
        assert c.combine("svar", 1) != c.combine("slit", 1)
        assert c.combine("pt_left", 5) != c.combine("pt_right", 5)

    def test_arity_matters(self):
        c = HashCombiners()
        assert c.combine("top", 1) != c.combine("top", 1, 0)

    def test_order_matters(self):
        c = HashCombiners()
        assert c.combine("top", 1, 2) != c.combine("top", 2, 1)

    def test_unknown_salt_rejected(self):
        c = HashCombiners()
        with pytest.raises(KeyError):
            c.combine("not-a-salt", 1)


class TestWidths:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 100, 128])
    def test_outputs_fit_width(self, bits):
        c = HashCombiners(bits=bits, seed=5)
        for value in (0, 1, 12345, 2**63):
            assert 0 <= c.combine("top", value) < (1 << bits)
            assert 0 <= c.hash_name(f"n{value}") < (1 << bits)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            HashCombiners(bits=4)
        with pytest.raises(ValueError):
            HashCombiners(bits=256)

    def test_wide_lane_composition(self):
        c = HashCombiners(bits=128)
        value = c.combine("top", 7)
        # both 64-bit lanes must carry entropy
        assert value >> 64 != 0
        assert value & ((1 << 64) - 1) != 0

    def test_16_bit_appendix_config(self):
        c = HashCombiners(bits=16)
        assert c.mask == 0xFFFF


class TestPrimitiveHashes:
    def test_name_memoised(self):
        c = HashCombiners()
        assert c.hash_name("x") == c.hash_name("x")

    def test_names_distinct(self):
        c = HashCombiners()
        values = {c.hash_name(f"v{i}") for i in range(500)}
        assert len(values) == 500

    def test_lit_type_separation(self):
        c = HashCombiners()
        assert c.hash_lit(1) != c.hash_lit(1.0)
        assert c.hash_lit(1) != c.hash_lit(True)
        assert c.hash_lit(0) != c.hash_lit(False)
        assert c.hash_lit("1") != c.hash_lit(1)

    def test_lit_float_precision(self):
        c = HashCombiners()
        assert c.hash_lit(0.1) != c.hash_lit(0.1000000001)

    def test_huge_ints(self):
        c = HashCombiners()
        assert c.hash_lit(2**100) != c.hash_lit(2**100 + 1)

    def test_unhashable_lit(self):
        with pytest.raises(TypeError):
            HashCombiners().hash_lit(object())

    def test_maybe_none_sentinel(self):
        c = HashCombiners()
        assert c.maybe(None) == c.NONE_HASH
        assert c.maybe(42) == 42

    def test_flags(self):
        c = HashCombiners()
        assert c.flag(True) == c.TRUE_HASH
        assert c.flag(False) == c.FALSE_HASH
        assert c.TRUE_HASH != c.FALSE_HASH


class TestMixingQuality:
    def test_splitmix_avalanche(self):
        # flipping one input bit should flip roughly half the output bits
        base = splitmix64(0x1234_5678)
        flipped = splitmix64(0x1234_5679)
        differing = bin(base ^ flipped).count("1")
        assert 16 <= differing <= 48

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_splitmix_range(self, x):
        assert 0 <= splitmix64(x) < 2**64

    def test_no_easy_collisions_across_values(self):
        c = HashCombiners(bits=64)
        seen = {c.combine("top", i, j) for i in range(40) for j in range(40)}
        assert len(seen) == 1600
