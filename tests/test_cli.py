"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def expr_file(tmp_path):
    path = tmp_path / "program.lam"
    path.write_text("(a + (v + 7)) * (v + 7)\n")
    return str(path)


class TestDispatch:
    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err


class TestHashCommand:
    def test_hash_prints_hex(self, capsys, expr_file):
        assert main(["hash", expr_file]) == 0
        out = capsys.readouterr().out.strip()
        assert out.startswith("0x")
        int(out, 16)

    def test_hash_deterministic(self, capsys, expr_file):
        main(["hash", expr_file])
        first = capsys.readouterr().out
        main(["hash", expr_file])
        assert capsys.readouterr().out == first

    def test_hash_bits(self, capsys, expr_file):
        assert main(["hash", expr_file, "--bits", "16"]) == 0
        value = int(capsys.readouterr().out.strip(), 16)
        assert value < (1 << 16)

    def test_hash_seed_changes_value(self, capsys, expr_file):
        main(["hash", expr_file, "--seed", "1"])
        a = capsys.readouterr().out
        main(["hash", expr_file, "--seed", "2"])
        assert capsys.readouterr().out != a

    def test_hash_algorithm_choice(self, capsys, expr_file):
        assert main(["hash", expr_file, "--algorithm", "structural"]) == 0
        capsys.readouterr()

    def test_alpha_invariance_through_cli(self, capsys, tmp_path):
        f1 = tmp_path / "a.lam"
        f2 = tmp_path / "b.lam"
        f1.write_text(r"\x. x + 7")
        f2.write_text(r"\y. y + 7")
        main(["hash", str(f1)])
        first = capsys.readouterr().out
        main(["hash", str(f2)])
        assert capsys.readouterr().out == first

    def test_hash_batch_mode_emits_json_records(self, capsys, tmp_path):
        import json

        files = []
        for name, text in (("a.lam", r"\x. x + 7"), ("b.lam", r"\y. y + 7"),
                           ("c.lam", "a b")):
            f = tmp_path / name
            f.write_text(text)
            files.append(str(f))
        assert main(["hash", *files]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert [r["file"] for r in records] == files
        # the two alpha-equivalent inputs agree, the third differs
        assert records[0]["hash"] == records[1]["hash"] != records[2]["hash"]
        assert all(r["backend"] == "ours" and r["bits"] == 64 for r in records)

    def test_hash_batch_matches_single_file_mode(self, capsys, tmp_path):
        import json

        f1 = tmp_path / "a.lam"
        f2 = tmp_path / "b.lam"
        f1.write_text(r"\x. x + 7")
        f2.write_text("q r")
        main(["hash", str(f1)])
        single = capsys.readouterr().out.strip()
        main(["hash", str(f1), str(f2)])
        batch = json.loads(capsys.readouterr().out.splitlines()[0])
        assert batch["hash"] == single

    def test_hash_batch_ablation_backend(self, capsys, tmp_path):
        f = tmp_path / "a.lam"
        f.write_text(r"\x. x + 7")
        # ablations are reachable through the unified registry
        assert main(["hash", str(f), "--algorithm", "recompute_vm"]) == 0
        recompute = capsys.readouterr().out
        main(["hash", str(f)])
        assert capsys.readouterr().out == recompute  # bit-identical variant


class TestClassesCommand:
    def test_lists_classes(self, capsys, expr_file):
        assert main(["classes", expr_file]) == 0
        out = capsys.readouterr().out
        assert "2 occurrences" in out
        assert "v + 7" in out

    def test_no_classes(self, capsys, tmp_path):
        path = tmp_path / "p.lam"
        path.write_text("a b")
        main(["classes", str(path)])
        assert "no repeated" in capsys.readouterr().out


class TestCseCommand:
    def test_transforms(self, capsys, expr_file):
        assert main(["cse", expr_file]) == 0
        captured = capsys.readouterr()
        assert "let cse0 = v + 7 in" in captured.out
        assert "rounds" in captured.err


class TestExperimentDispatch:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--trials", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out
