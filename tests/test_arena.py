"""Arena kernel wall: array-speed hashing must be bit-identical.

The arena engine (:mod:`repro.core.arena`) re-implements the paper's
single-pass hashing over a post-order struct-of-arrays compilation of
the corpus.  Its one contract is *bit-identity* with the tree path --
:func:`repro.core.hashed.alpha_hash_all` -- on every input, at every
combiner width, under every fan-out mode.  This wall pins that
contract on adversarial corpora (deep chains, heavy sharing, shadowed
binders, a depth-5000 degenerate case), plus the arena's own
mechanics: flatten-time dedup, ``flatten -> rebuild`` round-trips,
incremental flattening, pickling (the spawn wire format), and
``only=``-restricted kernel runs.
"""

import pickle
import random

import pytest

from repro.api import HashRequest, Session
from repro.core.arena import (
    ARENA_MIN_NODES,
    ExprArena,
    arena_hash,
    flatten_corpus,
    resolve_engine,
)
from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import alpha_hash_all
from repro.gen.adversarial import adversarial_pair
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.store import (
    ExprStore,
    ShardedExprStore,
    WorkerPool,
    hash_corpus_arena,
    parallel_hash_corpus,
)

DEPTH_DEEP = 5000


def tree_hashes(corpus, combiners=None):
    """The reference: one alpha_hash_all pass per corpus item."""
    return [alpha_hash_all(e, combiners).root_hash for e in corpus]


def kernel_hashes(corpus, combiners=None):
    """The subject: flatten once, run the array kernel, read the roots."""
    arena, roots = flatten_corpus(corpus)
    tops = arena_hash(arena, combiners)
    return [tops[r] for r in roots]


def mixed_corpus(n_items: int, seed: int = 5, size: int = 50):
    """Random + adversarial + alpha-renamed items with object-identity
    duplicates: the differential wall's diet."""
    rng = random.Random(seed)
    corpus: list[Expr] = []
    while len(corpus) < n_items:
        roll = rng.random()
        if roll < 0.2 and corpus:
            corpus.append(rng.choice(corpus))
        elif roll < 0.3 and corpus:
            corpus.append(alpha_rename(rng.choice(corpus), seed=rng.randrange(1 << 16)))
        elif roll < 0.5:
            a, b = adversarial_pair(size, seed=rng.randrange(1 << 30))
            corpus.extend((a, b))
        else:
            corpus.append(
                random_expr(
                    size,
                    rng=rng,
                    shape=rng.choice(("balanced", "unbalanced")),
                    p_let=0.25,
                    p_lit=0.15,
                )
            )
    return corpus[:n_items]


def left_skewed_app(depth: int) -> Expr:
    expr: Expr = Var("x")
    for _ in range(depth):
        expr = App(expr, Var("y"))
    return expr


def right_skewed_app(depth: int) -> Expr:
    expr: Expr = Var("x")
    for _ in range(depth):
        expr = App(Var("y"), expr)
    return expr


def lam_chain(depth: int) -> Expr:
    expr: Expr = Var("v0")
    for i in range(depth):
        expr = Lam(f"v{i % 7}", expr)
    return expr


def let_chain(depth: int) -> Expr:
    expr: Expr = Var("x0")
    for i in range(depth):
        expr = Let(f"x{i % 5}", Var(f"x{(i + 1) % 5}"), expr)
    return expr


class TestDifferential:
    """Bit-identity with alpha_hash_all, corpus shape by corpus shape."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return mixed_corpus(600)

    def test_mixed_corpus_bit_identity(self, corpus):
        assert kernel_hashes(corpus) == tree_hashes(corpus)

    @pytest.mark.parametrize("bits", [16, 32, 64, 96, 128])
    def test_bit_identity_at_every_width(self, bits):
        """bits <= 64 runs the inlined lane-1 kernel, wider runs the
        generic combine_chain kernel -- both must agree with the tree."""
        corpus = mixed_corpus(120, seed=bits, size=40)
        combiners = HashCombiners(bits=bits)
        assert kernel_hashes(corpus, combiners) == tree_hashes(corpus, combiners)

    def test_deep_chains(self):
        corpus = [
            left_skewed_app(2000),
            right_skewed_app(2000),
            lam_chain(2000),
            let_chain(2000),
        ]
        assert kernel_hashes(corpus) == tree_hashes(corpus)

    def test_depth_5000_degenerate(self):
        """The degenerate ceiling: flatten and kernel are iterative, so
        a depth-5000 spine neither recurses nor diverges from the tree."""
        corpus = [left_skewed_app(DEPTH_DEEP), lam_chain(DEPTH_DEEP)]
        assert kernel_hashes(corpus) == tree_hashes(corpus)

    def test_heavy_sharing(self):
        """One shared subtree object referenced massively: the arena
        visits it once, the hashes must not notice."""
        shared = random_expr(60, seed=11, p_let=0.3)
        expr: Expr = shared
        for _ in range(200):
            expr = App(expr, shared)
        corpus = [expr, shared, App(shared, shared)]
        assert kernel_hashes(corpus) == tree_hashes(corpus)

    def test_shadowed_binders(self):
        x = Var("x")
        corpus = [
            Lam("x", Lam("x", x)),
            Lam("x", App(x, Lam("x", x))),
            Let("x", x, Let("x", x, x)),
            Lam("x", Let("x", App(x, x), App(x, x))),
        ]
        assert kernel_hashes(corpus) == tree_hashes(corpus)

    def test_alpha_equivalent_items_collide(self):
        """Alpha-equivalent-but-renamed items keep distinct arena nodes
        yet must still hash equal -- the collapse happens in hash space."""
        base = random_expr(80, seed=3, p_let=0.3)
        renamed = alpha_rename(base, seed=9)
        hashes = kernel_hashes([base, renamed])
        assert hashes[0] == hashes[1]

    def test_literal_types_not_conflated(self):
        corpus = [Lit(1), Lit(True), Lit(1.0), Lit("1"), Lit(0), Lit(False)]
        hashes = kernel_hashes(corpus)
        assert hashes == tree_hashes(corpus)
        assert len(set(hashes)) == len(corpus)


class TestFlatten:
    """The compile step's own invariants."""

    def test_dedup_collapses_structural_repeats(self):
        shared = random_expr(40, seed=2)
        corpus = [App(shared, shared), shared, App(shared, shared)]
        arena, roots = flatten_corpus(corpus)
        # Both App(shared, shared) items -- distinct calls, identical
        # structure -- land on one arena node.
        assert roots[0] == roots[2]
        assert len(arena) <= shared.size + 1

    def test_incremental_flatten_reuses_nodes(self):
        corpus = mixed_corpus(50, seed=21)
        arena, roots = flatten_corpus(corpus)
        before = len(arena)
        # Re-flattening the same corpus -- and structurally identical
        # *fresh* objects -- adds nothing: dedup is structural, not
        # object-identity.
        clone = pickle.loads(pickle.dumps(corpus[0]))
        again = arena.flatten([clone, *corpus])
        assert len(arena) == before
        assert again == [roots[0], *roots]

    def test_postorder_invariant(self):
        arena, _ = flatten_corpus(mixed_corpus(80, seed=13))
        for i in range(len(arena)):
            assert arena.left[i] < i
            assert arena.right[i] < i

    def test_stats_and_max_depth(self):
        corpus = [left_skewed_app(100), Var("x")]
        arena, roots = flatten_corpus(corpus)
        stats = arena.stats()
        assert stats["nodes"] == len(arena)
        assert stats["bytes"] > 0
        assert arena.max_depth() == 101
        assert arena.max_depth([roots[1]]) == 1

    def test_unknown_node_kind_rejected(self):
        arena = ExprArena()
        with pytest.raises(TypeError):
            arena.flatten([object()])

    def test_failed_flatten_rolls_back_completely(self):
        """A foreign node mid-corpus must leave no trace: no columns, no
        leaf-table entries, no dangling structural-index rows."""
        arena = ExprArena()
        good = App(Var("x"), Lit(5))
        with pytest.raises(TypeError):
            arena.flatten([good, object()])
        assert len(arena) == 0
        assert arena.names == [] and arena.literals == []
        roots = arena.flatten([good])
        tops = arena_hash(arena, default_combiners())
        assert tops[roots[0]] == alpha_hash_all(good).root_hash

    def test_failed_flatten_preserves_existing_nodes(self):
        arena, roots0 = flatten_corpus([App(Var("x"), Var("y"))])
        n0, names0 = len(arena), list(arena.names)
        with pytest.raises(TypeError):
            arena.flatten([Lam("z", Var("w")), object()])
        assert len(arena) == n0 and arena.names == names0
        assert arena.flatten([App(Var("x"), Var("y"))]) == roots0


class TestRoundTrip:
    """flatten -> rebuild preserves alpha-hashes and sharing."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rebuild_preserves_alpha_hash(self, seed):
        corpus = mixed_corpus(60, seed=seed)
        arena, roots = flatten_corpus(corpus)
        for expr, root in zip(corpus, roots):
            rebuilt = arena.rebuild(root)
            assert (
                alpha_hash_all(rebuilt).root_hash
                == alpha_hash_all(expr).root_hash
            )

    def test_rebuild_is_maximally_shared(self):
        shared = random_expr(30, seed=4)
        arena, roots = flatten_corpus([App(shared, shared)])
        rebuilt = arena.rebuild(roots[0])
        assert rebuilt.fn is rebuilt.arg

    def test_rebuild_deep_chain(self):
        arena, roots = flatten_corpus([lam_chain(DEPTH_DEEP)])
        rebuilt = arena.rebuild(roots[0])
        assert rebuilt.size == DEPTH_DEEP + 1


class TestKernelMechanics:
    def test_only_restricts_work(self):
        corpus = mixed_corpus(40, seed=8)
        arena, roots = flatten_corpus(corpus)
        full = arena_hash(arena, default_combiners())
        some = sorted(set(roots[:10]))
        partial = arena_hash(arena, default_combiners(), only=some)
        for r in some:
            assert partial[r] == full[r]
        outside = set(i for i, b in enumerate(arena.closure(some)) if not b)
        assert all(partial[i] is None for i in outside)

    def test_pickle_round_trip(self):
        """The spawn wire format: flat arrays survive pickling, the
        revived arena hashes identically and keeps growing."""
        corpus = mixed_corpus(60, seed=17)
        arena, roots = flatten_corpus(corpus)
        revived = pickle.loads(pickle.dumps(arena))
        assert len(revived) == len(arena)
        tops = arena_hash(revived, default_combiners())
        assert [tops[r] for r in roots] == tree_hashes(corpus)
        # The structural index is rebuilt lazily: flattening the same
        # corpus into the revived arena must add nothing.
        again = revived.flatten(corpus)
        assert len(revived) == len(arena)
        assert again == roots

    def test_deep_arena_pickles_iteratively(self):
        """Depth-5000 trees cannot be pickled directly (recursion), but
        their arena can -- that is what lifts the fork-only restriction."""
        arena, roots = flatten_corpus([left_skewed_app(DEPTH_DEEP)])
        revived = pickle.loads(pickle.dumps(arena))
        tops = arena_hash(revived, default_combiners(), only=[roots[0]])
        ref = arena_hash(arena, default_combiners())
        assert tops[roots[0]] == ref[roots[0]]

    def test_resolve_engine(self):
        assert resolve_engine("auto", ARENA_MIN_NODES) == "arena"
        assert resolve_engine("auto", ARENA_MIN_NODES - 1) == "tree"
        assert resolve_engine("arena", 1) == "arena"
        assert resolve_engine("tree", 10**9) == "tree"
        with pytest.raises(ValueError):
            resolve_engine("warp", 100)


class TestStoreIntegration:
    """engine= plumbing through ExprStore / Session / sharing."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return mixed_corpus(300, seed=31)

    def test_store_hash_corpus_engines_agree(self, corpus):
        ref = ExprStore().hash_corpus(corpus, engine="tree")
        assert ExprStore().hash_corpus(corpus, engine="arena") == ref

    def test_store_arena_root_memo_answers_repeats(self, corpus):
        store = ExprStore()
        first = store.hash_corpus(corpus, engine="arena")
        hits_before = store.stats.memo_hits
        second = store.hash_corpus(corpus, engine="arena")
        assert second == first
        assert store.stats.memo_hits > hits_before

    def test_pure_function_mode(self, corpus):
        combiners = default_combiners()
        assert (
            hash_corpus_arena(None, corpus, combiners=combiners)
            == tree_hashes(corpus, combiners)
        )

    def test_intern_after_hash_reuses_compile(self, corpus):
        """The repro-session flow: hash_corpus then intern_many of the
        same corpus must not flatten and hash the arena twice."""
        store = ExprStore()
        hashes = store.hash_corpus(corpus, engine="arena")
        hashed_before = store.stats.hashed_nodes
        ids = store.intern_many(corpus, engine="arena")
        assert store.stats.hashed_nodes == hashed_before
        assert [store.hash_of(i) for i in ids] == hashes
        assert ids == ExprStore().intern_many(corpus, engine="tree")

    def test_intern_many_engines_agree(self, corpus):
        by_tree = ExprStore().intern_many(corpus, engine="tree")
        by_arena = ExprStore().intern_many(corpus, engine="arena")
        assert by_arena == by_tree

    def test_intern_many_arena_store_state_matches(self, corpus):
        tree_store, arena_store = ExprStore(), ExprStore()
        tree_store.intern_many(corpus, engine="tree")
        arena_store.intern_many(corpus, engine="arena")
        assert len(arena_store) == len(tree_store)
        for entry in tree_store.entries():
            other = arena_store.lookup_hash(entry.hash)
            assert other is not None
            assert arena_store.entry(other).kind == entry.kind

    def test_lru_bounded_store_keeps_tree_path(self, corpus):
        bounded = ExprStore(max_entries=64)
        ids = bounded.intern_many(corpus, engine="arena")
        assert len(ids) == len(corpus)
        assert len(bounded) <= 64

    def test_sharded_store_hash_corpus_arena(self, corpus):
        sharded = ShardedExprStore(num_shards=4)
        assert (
            sharded.hash_corpus(corpus, engine="arena")
            == ExprStore().hash_corpus(corpus, engine="tree")
        )

    def test_sharded_intern_stays_lock_striped(self, corpus):
        """Sharded ids encode the shard, so compare classes by hash:
        same classes, same per-item resolution as the flat tree path."""
        sharded = ShardedExprStore(num_shards=4)
        flat = ExprStore()
        sharded_ids = sharded.intern_many(corpus, engine="arena")
        flat_ids = flat.intern_many(corpus, engine="tree")
        assert [sharded.hash_of(i) for i in sharded_ids] == [
            flat.hash_of(i) for i in flat_ids
        ]

    def test_session_engine_plumbing(self, corpus):
        ref = Session(engine="tree").hash_corpus(corpus)
        assert Session(engine="arena").hash_corpus(corpus) == ref
        assert Session().execute(HashRequest(corpus, engine="arena")) == ref

    def test_session_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            Session(engine="warp")

    def test_share_corpus_through_arena(self):
        corpus = mixed_corpus(40, seed=41)
        session = Session()
        results = session.share(corpus)
        assert len(results) == len(corpus)
        for expr, result in zip(corpus, results):
            assert (
                alpha_hash_all(result.root).root_hash
                == alpha_hash_all(expr).root_hash
            )

    def test_share_corpus_on_lru_bounded_store(self):
        """Eviction must not strand batch-interned roots: bounded
        stores share item by item (regression: KeyError in expr_of)."""
        corpus = mixed_corpus(50, seed=43)
        results = Session(max_entries=10).share(corpus)
        assert len(results) == len(corpus)
        for expr, result in zip(corpus, results):
            assert (
                alpha_hash_all(result.root).root_hash
                == alpha_hash_all(expr).root_hash
            )

    def test_snapshot_round_trips_engine(self, tmp_path):
        session = Session(engine="tree")
        session.intern_many(mixed_corpus(5, seed=3))
        path = str(tmp_path / "s.snap")
        session.save(path)
        assert Session.load(path).config.engine == "tree"


class TestSpawnParallel:
    """The lifted restriction: arena chunks cross any process boundary."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return mixed_corpus(400, seed=51)

    @pytest.fixture(scope="class")
    def serial(self, corpus):
        return ExprStore().hash_corpus(corpus, engine="tree")

    def test_spawn_mode_bit_identity(self, corpus, serial):
        assert (
            parallel_hash_corpus(corpus, workers=2, mode="spawn", engine="arena")
            == serial
        )

    def test_fork_mode_bit_identity(self, corpus, serial):
        assert (
            parallel_hash_corpus(corpus, workers=2, mode="fork", engine="arena")
            == serial
        )

    def test_thread_mode_bit_identity(self, corpus, serial):
        assert (
            parallel_hash_corpus(corpus, workers=2, mode="thread", engine="arena")
            == serial
        )

    def test_spawn_mode_depth_5000(self):
        """The tree engine refuses spawn beyond MAX_PICKLE_DEPTH; the
        arena engine must not -- arenas pickle iteratively."""
        corpus = [left_skewed_app(DEPTH_DEEP), lam_chain(DEPTH_DEEP)] * 3
        serial = kernel_hashes(corpus)
        assert (
            parallel_hash_corpus(corpus, workers=2, mode="spawn", engine="arena")
            == serial
        )

    def test_persistent_pool_reuse(self, corpus, serial):
        with WorkerPool(2, "spawn") as pool:
            first = parallel_hash_corpus(
                corpus, workers=2, engine="arena", pool=pool
            )
            assert pool.started
            second = parallel_hash_corpus(
                corpus, workers=2, engine="arena", pool=pool
            )
        assert first == serial and second == serial
        assert not pool.started

    def test_pool_close_is_idempotent(self):
        pool = WorkerPool(2, "thread")
        pool.close()
        pool.close()
        assert not pool.started

    def test_abandoned_pool_reclaimed_by_gc(self):
        """An un-closed pool (one-shot session, no close()) must not
        strand workers: the GC finalizer shuts it down."""
        import gc

        pool = WorkerPool(2, "thread")
        pool.map(len, [(1, 2)])
        finalizer = pool._finalizer
        assert finalizer is not None and finalizer.alive
        del pool
        gc.collect()
        assert not finalizer.alive

    def test_session_owns_pools_and_closes(self, corpus, serial):
        with Session(
            workers=2, parallel_mode="spawn", engine="arena"
        ) as session:
            assert session.hash_corpus(corpus) == serial
            assert session.hash_corpus(corpus) == serial
            assert session.stats()["live_pools"] == ["spawnx2"]
        assert session.stats()["live_pools"] == []

    def test_session_tree_engine_registers_no_pool(self, corpus, serial):
        """Tree-engine parallel calls cannot use a persistent pool, so
        the session must not create one for them."""
        with Session(
            workers=2, parallel_mode="thread", engine="tree"
        ) as session:
            assert session.hash_corpus(corpus) == serial
            assert session.stats()["live_pools"] == []

    def test_store_stats_fold_back(self, corpus):
        store = ExprStore()
        parallel_hash_corpus(
            corpus, workers=2, mode="spawn", engine="arena", store=store
        )
        assert store.stats.hashed_nodes > 0

    def test_concurrent_parallel_calls_on_shared_sharded_store(
        self, corpus, serial
    ):
        """The arena path takes the sharded store's memo lock: several
        threads fanning out over one store must not corrupt it."""
        import threading

        store = ShardedExprStore(num_shards=4)
        outputs: dict[int, list] = {}

        def run(slot):
            outputs[slot] = parallel_hash_corpus(
                corpus, workers=2, mode="thread", engine="arena", store=store
            )

        threads = [threading.Thread(target=run, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(outputs[t] == serial for t in range(3))
