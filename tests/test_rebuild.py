"""Tests for rebuild (Section 4.7): e-summaries are invertible.

"rebuild (summariseExpr e) is alpha-equivalent to e" -- the property
that makes the e-summary information-lossless and hence the whole
algorithm free of systematic false positives.
"""

from hypothesis import given

from repro.core.esummary import (
    esummary_equal,
    rebuild_naive,
    rebuild_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.names import NameSupply, has_unique_binders
from repro.lang.parser import parse

from strategies import exprs

import pytest

VARIANTS = [
    (summarise_naive, rebuild_naive),
    (summarise_tagged, rebuild_tagged),
]


@pytest.mark.parametrize("summarise,rebuild", VARIANTS)
class TestRoundTrip:
    def test_variable(self, summarise, rebuild):
        e = Var("x")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_lit(self, summarise, rebuild):
        assert alpha_equivalent(rebuild(summarise(Lit(42))), Lit(42))

    def test_identity_lambda(self, summarise, rebuild):
        e = parse(r"\x. x")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_unused_binder(self, summarise, rebuild):
        e = parse(r"\x. y")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_figure1_example(self, summarise, rebuild):
        # \x. (\b. x b) x -- the paper's running Figure 1 expression.
        e = parse(r"\x. (\b. x b) x")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_repeated_variables(self, summarise, rebuild):
        e = parse("add x x")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_lets(self, summarise, rebuild):
        e = parse("let w = v + 7 in (a + w) * w")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_let_unused_binder(self, summarise, rebuild):
        e = parse("let w = v in z")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_shared_variable_across_children(self, summarise, rebuild):
        e = parse(r"\f. f (g f) (g g)")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    def test_unbalanced_merge_paths(self, summarise, rebuild):
        # Arranged so both merge directions occur (bigger map on the
        # left at one App, on the right at another).
        e = parse("pair (a + b + c + d) e * (p (q r))")
        assert alpha_equivalent(rebuild(summarise(e)), e)

    @given(exprs(max_size=60))
    def test_property(self, summarise, rebuild, e):
        rebuilt = rebuild(summarise(e))
        assert alpha_equivalent(rebuilt, e)

    @given(exprs(max_size=40))
    def test_rebuild_then_summarise_fixpoint(self, summarise, rebuild, e):
        summary = summarise(e)
        assert esummary_equal(summarise(rebuild(summary)), summary)

    def test_deep_chain(self, summarise, rebuild):
        e = Var("free")
        for i in range(3_000):
            e = Lam(f"v{i}", e)
        assert rebuild(summarise(e)).size == e.size


@pytest.mark.parametrize("summarise,rebuild", VARIANTS)
class TestFreshNames:
    def test_rebuilt_binders_are_unique(self, summarise, rebuild):
        e = parse(r"(\x. x) (\x2. x2) (let y = q in y)")
        rebuilt = rebuild(summarise(e))
        assert has_unique_binders(rebuilt)

    def test_no_capture_of_free_vars_named_like_fresh(self, summarise, rebuild):
        # free variable literally called "v0": rebuild must avoid it.
        e = Lam("x", App(Var("x"), Var("v0")))
        rebuilt = rebuild(summarise(e))
        assert alpha_equivalent(rebuilt, e)

    def test_custom_supply(self, summarise, rebuild):
        e = parse(r"\x. x")
        supply = NameSupply(start=100)
        rebuilt = rebuild(summarise(e), supply=supply)
        assert rebuilt.binder == "v100"  # type: ignore[union-attr]


class TestTagDisambiguation:
    """The Section 4.8 rebuild relies on structure tags to split maps."""

    def test_nested_apps_same_variable(self):
        # x occurs at several depths; PTJoins with different tags stack.
        e = parse("x (x (x y))")
        summary = summarise_tagged(e)
        assert alpha_equivalent(rebuild_tagged(summary), e)

    def test_variable_in_both_children_at_every_level(self):
        e = parse("(x x) (x x)")
        assert alpha_equivalent(rebuild_tagged(summarise_tagged(e)), e)

    def test_deep_joins(self):
        e = Var("x")
        for _ in range(200):
            e = App(e, Var("x"))
        assert alpha_equivalent(rebuild_tagged(summarise_tagged(e)), e)


class TestExactRebuildWithNameHints:
    """Footnote 1 of Section 4.7: record binder names in the Structure
    (outside the hash) to recover the original expression exactly."""

    @given(exprs(max_size=60))
    def test_naive_exact(self, e):
        from repro.lang.expr import syntactic_eq

        rebuilt = rebuild_naive(summarise_naive(e, keep_names=True))
        assert syntactic_eq(rebuilt, e)

    @given(exprs(max_size=60))
    def test_tagged_exact(self, e):
        from repro.lang.expr import syntactic_eq

        rebuilt = rebuild_tagged(summarise_tagged(e, keep_names=True))
        assert syntactic_eq(rebuilt, e)

    @given(exprs(max_size=40))
    def test_hints_are_hash_neutral(self, e):
        from repro.core.combiners import HashCombiners
        from repro.core.esummary import hash_esummary_tree

        combiners = HashCombiners(seed=19)
        with_names = summarise_tagged(e, keep_names=True)
        without = summarise_tagged(e)
        assert hash_esummary_tree(combiners, with_names) == hash_esummary_tree(
            combiners, without
        )

    @given(exprs(max_size=40))
    def test_hints_do_not_affect_equality(self, e):
        from repro.core.esummary import esummary_equal

        assert esummary_equal(
            summarise_tagged(e, keep_names=True), summarise_tagged(e)
        )

    def test_shadowed_names_recovered(self):
        from repro.lang.expr import syntactic_eq

        e = parse(r"\x. x (\x. x)")
        rebuilt = rebuild_tagged(summarise_tagged(e, keep_names=True))
        assert syntactic_eq(rebuilt, e)
