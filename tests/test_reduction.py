"""Tests for the small-step reducer, including the CEK differential."""

import random

import pytest

from repro.lang.evaluator import EvalError, EvalFuelExhausted, evaluate
from repro.lang.expr import App, Lam, Lit, Var
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.reduction import reduce_to_value, step

from test_cse import arith_expr


class TestStep:
    def test_value_returns_none(self):
        assert step(Lit(3)) is None
        assert step(parse(r"\x. x")) is None

    def test_partial_prim_is_value(self):
        assert step(parse("add 1")) is None

    def test_beta(self):
        out = step(parse(r"(\x. x + x) 3"))
        assert pretty(out) == "3 + 3"

    def test_delta(self):
        out = step(parse("add 1 2"))
        assert pretty(out) == "3"

    def test_let_substitutes_value(self):
        out = step(parse("let w = 3 in w * w"))
        assert pretty(out) == "3 * 3"

    def test_let_reduces_bound_first(self):
        out = step(parse("let w = 1 + 2 in w"))
        assert pretty(out) == "let w = 3 in w"

    def test_leftmost_innermost_order(self):
        out = step(parse("(1 + 2) * (3 + 4)"))
        assert pretty(out) == "3 * (3 + 4)"

    def test_capture_avoided_in_beta(self):
        # (\f. \x. f) (\z. x)  ~>  \x'. \z. x  (the argument's free x
        # must not be captured by the inner binder).
        expr = App(Lam("f", Lam("x", Var("f"))), Lam("z", Var("x")))
        out = step(expr)
        assert isinstance(out, Lam)
        assert out.binder != "x"
        inner = out.body
        assert isinstance(inner, Lam) and inner.body.name == "x"

    def test_stuck_terms(self):
        with pytest.raises(EvalError):
            step(parse("nosuch 1"))
        with pytest.raises(EvalError):
            step(parse("3 4"))
        with pytest.raises(EvalError):
            reduce_to_value(parse(r"eq (\x. x) 1"))


class TestReduceToValue:
    def test_arithmetic(self):
        assert reduce_to_value(parse("2 + 3 * 4")).value == 14

    def test_nested_lets(self):
        out = reduce_to_value(parse("let a = 1 in let b = a + 1 in b * b"))
        assert out.value == 4

    def test_higher_order(self):
        out = reduce_to_value(parse(r"(\f. f (f 2)) (\x. x * x)"))
        assert out.value == 16

    def test_fuel(self):
        omega = parse(r"(\x. x x) (\x. x x)")
        with pytest.raises(EvalFuelExhausted):
            reduce_to_value(omega, fuel=50)

    def test_lambda_value(self):
        out = reduce_to_value(parse(r"\x. x"))
        assert isinstance(out, Lam)


class TestDifferentialAgainstCEK:
    """The substitution semantics and the CEK machine must agree on
    every closed total program -- cross-validating both interpreters
    and the capture-avoiding substitution they share nothing with."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_closed_programs(self, seed):
        rng = random.Random(seed * 31 + 7)
        program = arith_expr(rng, depth=4, scope=[])
        cek = evaluate(program)
        small_step = reduce_to_value(program)
        assert isinstance(small_step, Lit)
        assert small_step.value == cek
        assert type(small_step.value) is type(cek)

    @pytest.mark.parametrize(
        "source",
        [
            "ite (lt 1 2) (10 + 1) (20 + 2)",
            "min (max 3 5) (7 - 2)",
            r"(\x. \y. x - y) 10 4",
            "let f = 3 in let g = f * f in g + f",
            r"(let a = 10 in \x. x + a) 5",
        ],
    )
    def test_specific_programs(self, source):
        program = parse(source)
        assert reduce_to_value(program).value == evaluate(program)
