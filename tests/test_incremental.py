"""Tests for incremental re-hashing (Section 6.3).

Ground truth: after any sequence of subtree replacements, every node
hash reported by the incremental hasher must equal a from-scratch batch
re-hash of the current expression.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Lam, Lit, Var
from repro.lang.parser import parse
from repro.lang.traversal import preorder_with_paths, replace_at

from strategies import exprs


def assert_matches_batch(hasher: IncrementalHasher) -> None:
    fresh = alpha_hash_all(hasher.expr)
    for node, value in hasher.iter_hashes():
        assert value == fresh.hash_of(node)


class TestConstruction:
    def test_initial_hashes_match_batch(self):
        e = parse("let w = v + 7 in (a + w) * w")
        hasher = IncrementalHasher(e)
        assert_matches_batch(hasher)

    def test_root_hash(self):
        e = parse(r"\x. x")
        assert IncrementalHasher(e).root_hash == alpha_hash_all(e).root_hash

    def test_hash_at_path(self):
        e = parse("f (g x)")
        hasher = IncrementalHasher(e)
        batch = alpha_hash_all(e)
        assert hasher.hash_at((1,)) == batch.hash_of(e.arg)
        assert hasher.hash_at(()) == batch.root_hash

    def test_hashes_view(self):
        e = parse("f x x")
        view = IncrementalHasher(e).hashes()
        assert view.root_hash == alpha_hash_all(e).root_hash


class TestReplace:
    def test_single_replace(self):
        e = parse("(a + (v + 7)) * (v + 7)")
        hasher = IncrementalHasher(e)
        stats = hasher.replace((0, 1), parse("q * 2"))
        assert stats.subtree_nodes == 5
        assert_matches_batch(hasher)

    def test_replace_at_root(self):
        hasher = IncrementalHasher(parse("a b"))
        stats = hasher.replace((), parse(r"\x. x"))
        assert stats.path_nodes == 0
        assert hasher.root_hash == alpha_hash_all(parse(r"\y. y")).root_hash

    def test_replace_changes_free_vars(self):
        # new subtree introduces a new free variable: ancestors' maps
        # must all pick it up.
        e = parse(r"\x. x + 1")
        hasher = IncrementalHasher(e)
        hasher.replace((0, 1), Var("brandnew"))
        assert_matches_batch(hasher)

    def test_replace_removes_binder_occurrences(self):
        e = parse(r"\x. x + x")
        hasher = IncrementalHasher(e)
        hasher.replace((0,), Lit(0))  # body no longer mentions x
        assert_matches_batch(hasher)

    def test_sequential_replaces(self):
        e = random_expr(200, seed=5, shape="balanced", p_let=0.2)
        hasher = IncrementalHasher(e)
        rng = random.Random(0)
        for step in range(10):
            paths = [p for p, n in preorder_with_paths(hasher.expr) if n.size <= 7]
            path = rng.choice(paths)
            hasher.replace(path, Lit(step))
            assert_matches_batch(hasher)

    def test_equivalent_rewrite_preserves_root_hash(self):
        e = parse(r"foo (\x. x + 7) (\y. y + 7)")
        hasher = IncrementalHasher(e)
        before = hasher.root_hash
        # replace one lambda by an alpha-equivalent copy
        hasher.replace((1,), parse(r"\zz. zz + 7"))
        assert hasher.root_hash == before

    def test_invalid_path(self):
        hasher = IncrementalHasher(parse("a"))
        with pytest.raises(IndexError):
            hasher.replace((0,), Lit(1))

    @given(exprs(max_size=60), st.integers(0, 10**6))
    def test_random_rewrite_matches_batch(self, e, pick):
        hasher = IncrementalHasher(e)
        paths = list(preorder_with_paths(e))
        path, _node = paths[pick % len(paths)]
        replacement = parse("let fresh_b = 3 in fresh_b + zq")
        hasher.replace(path, replacement)
        expected = replace_at(e, path, replacement)
        batch = alpha_hash_all(expected)
        assert hasher.root_hash == batch.root_hash


class TestStatsAccounting:
    def test_partition_covers_tree(self):
        e = random_expr(500, seed=2, shape="balanced")
        hasher = IncrementalHasher(e)
        paths = [p for p, n in preorder_with_paths(e) if n.size <= 5 and p]
        stats = hasher.replace(paths[0], Lit(1))
        total = hasher.expr.size
        assert stats.path_nodes + stats.subtree_nodes + stats.unchanged_nodes == total
        assert stats.touched_nodes == stats.path_nodes + stats.subtree_nodes

    def test_locality_on_balanced_tree(self):
        e = random_expr(8192, seed=3, shape="balanced")
        hasher = IncrementalHasher(e)
        deep_paths = [
            p for p, n in preorder_with_paths(e) if n.size <= 3 and len(p) >= 5
        ]
        stats = hasher.replace(deep_paths[0], Lit(1))
        # the point of Section 6.3: touched work is tiny vs the tree
        assert stats.touched_nodes < e.size * 0.05

    def test_expr_is_fresh_tree(self):
        e = parse("f (g x)")
        hasher = IncrementalHasher(e)
        hasher.replace((1, 0), Var("h"))
        assert hasher.expr is not e
        assert e.arg.fn.name == "g"  # original untouched


class TestInteractionWithLets:
    def test_rewrite_inside_let_bound(self):
        e = parse("let w = v + 7 in w * w")
        hasher = IncrementalHasher(e)
        hasher.replace((0,), parse("v * 8"))
        assert_matches_batch(hasher)

    def test_rewrite_inside_let_body(self):
        e = parse("let w = v + 7 in w * w")
        hasher = IncrementalHasher(e)
        hasher.replace((1,), parse("w + w + w"))
        assert_matches_batch(hasher)


class TestBoundedStoreEviction:
    """Regression guards for bounded stores feeding the hasher.

    A memo- or LRU-bounded :class:`~repro.store.ExprStore` evicts
    entries at will between edits; the incremental rehash path must
    fall back to recomputing evicted hashes -- never raise, never
    drift from the from-scratch result.
    """

    def test_memo_flush_between_replaces_recomputes(self):
        from repro.store import ExprStore

        from repro.gen.random_exprs import alpha_rename

        store = ExprStore(memo_limit=32)
        e = random_expr(300, seed=11, shape="balanced")
        hasher = IncrementalHasher(e, store=store)
        rng = random.Random(12)
        for index in range(12):
            paths = [p for p, _n in preorder_with_paths(hasher.expr)]
            path = rng.choice(paths)
            repl = alpha_rename(random_expr(5, rng=rng), seed=1_000 + index)
            store._memo.clear()  # wholesale memo eviction mid-stream
            hasher.replace(path, repl)
            assert_matches_batch(hasher)

    def test_lru_churn_between_replaces_stays_bit_identical(self):
        from repro.store import ExprStore

        from repro.gen.random_exprs import alpha_rename

        store = ExprStore(max_entries=8, memo_limit=16)
        e = random_expr(200, seed=21, shape="balanced")
        hasher = IncrementalHasher(e, store=store)
        rng = random.Random(22)
        for index in range(10):
            # Foreign traffic cycles the tiny LRU several times over,
            # evicting any class the hasher may have leaned on.
            for extra in range(12):
                store.intern(
                    alpha_rename(
                        random_expr(6, rng=rng), seed=9_000 + index * 100 + extra
                    )
                )
            paths = [p for p, _n in preorder_with_paths(hasher.expr)]
            path = rng.choice(paths)
            repl = alpha_rename(random_expr(4, rng=rng), seed=2_000 + index)
            hasher.replace(path, repl)
            assert_matches_batch(hasher)
