"""Unit tests for the de Bruijn representation (Section 2.4)."""

from hypothesis import given

from repro.gen.random_exprs import alpha_rename
from repro.lang.alpha import alpha_equivalent
from repro.lang.debruijn import (
    DbApp,
    DbBound,
    DbFree,
    DbLam,
    canonical_key,
    db_equal,
    db_pretty,
    to_debruijn,
)
from repro.lang.expr import Lam, Let, Lit, Var
from repro.lang.parser import parse

from strategies import exprs


class TestConversion:
    def test_paper_example(self):
        # (\x.\y.x+y*7) is (\.\.%1+%0*7) in the paper's notation.
        e = parse(r"\x. \y. x + y * 7")
        text = db_pretty(to_debruijn(e))
        assert "%1" in text and "%0" in text
        assert text == "(\\. (\\. ((add %1) ((mul %0) 7))))"

    def test_free_variables_keep_names(self):
        e = parse(r"f x (\y. x + y)")
        text = db_pretty(to_debruijn(e))
        assert "f" in text and "x" in text
        assert "%0" in text

    def test_shadowing(self):
        e = parse(r"\x. x (\x. x)")
        db = to_debruijn(e)
        # outer occurrence: index 0 at depth 1; inner occurrence: index 0 at depth 2
        assert db_pretty(db) == "(\\. (%0 (\\. %0)))"

    def test_index_skips_intermediate_binder(self):
        e = parse(r"\x. \y. x")
        db = to_debruijn(e)
        assert db_pretty(db) == "(\\. (\\. %1))"

    def test_let_counts_as_binder(self):
        e = parse(r"let a = z in \y. a")
        db = to_debruijn(e)
        assert db_pretty(db) == "(let . = z in (\\. %1))"

    def test_let_bound_is_outside_scope(self):
        e = Let("x", Var("x"), Var("x"))
        db = to_debruijn(e)
        assert db_pretty(db) == "(let . = x in %0)"

    def test_lit(self):
        assert db_pretty(to_debruijn(Lit(3))) == "3"

    def test_deep_chain(self):
        e = Var("x0")
        for i in range(20_000):
            e = Lam(f"x{i + 1}", e)
        db = to_debruijn(e)
        assert db is not None


class TestDbEqual:
    def test_alpha_equivalent_exprs_have_equal_db(self):
        a = to_debruijn(parse(r"\x. x + y"))
        b = to_debruijn(parse(r"\p. p + y"))
        assert db_equal(a, b)

    def test_free_name_mismatch(self):
        a = to_debruijn(parse(r"\x. x + y"))
        b = to_debruijn(parse(r"\x. x + z"))
        assert not db_equal(a, b)

    def test_structure_mismatch(self):
        assert not db_equal(DbBound(0), DbFree("x"))
        assert not db_equal(DbLam(DbBound(0)), DbApp(DbBound(0), DbBound(0)))

    def test_index_mismatch(self):
        assert not db_equal(DbBound(0), DbBound(1))


class TestCanonicalKey:
    def test_equal_for_alpha_equivalent(self):
        assert canonical_key(parse(r"\x. x")) == canonical_key(parse(r"\y. y"))

    def test_distinct_for_different(self):
        assert canonical_key(parse(r"\x. x")) != canonical_key(parse(r"\x. x x"))

    def test_lit_type_sensitivity(self):
        assert canonical_key(Lit(1)) != canonical_key(Lit(1.0))
        assert canonical_key(Lit(True)) != canonical_key(Lit(1))

    @given(exprs(max_size=60))
    def test_invariant_under_renaming(self, e):
        assert canonical_key(e) == canonical_key(alpha_rename(e))

    @given(exprs(max_size=40), exprs(max_size=40))
    def test_key_equality_iff_alpha_equivalence(self, e1, e2):
        assert (canonical_key(e1) == canonical_key(e2)) == alpha_equivalent(e1, e2)
