"""The self-hosted static analyzer (`repro lint`) and its runtime witness.

Fixture snippets are written into a throwaway ``repro/``-shaped tree so
kernel/wire scoping applies, then analyzed with the real pipeline; the
witness tests drive actual :class:`ShardedExprStore` locks under
:mod:`repro.testing.lockcheck` and cross-check the record against the
static lock-order graph of the installed source tree.
"""

from __future__ import annotations

import json

import pytest

from repro.lint.findings import fingerprint
from repro.lint.runner import analyze, default_root, main

# -- fixture trees -------------------------------------------------------------


def write_tree(root, files: dict) -> str:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return str(root)


CYCLE = """\
import threading


class Pair:
    def __init__(self):
        self.first = threading.Lock()
        self.second = threading.Lock()

    def forward(self):
        with self.first:
            with self.second:
                pass

    def backward(self):
        with self.second:
            with self.first:
                pass
"""

FSYNC_UNDER_LOCK = """\
import os
import threading


class Writer:
    def __init__(self):
        self.lock = threading.Lock()

    def flush(self, fd):
        with self.lock:
            os.fsync(fd)
"""

SET_ITER = """\
def combine(values):
    out = 0
    seen = set(values)
    for item in seen:
        out = out * 31 + item
    return out
"""

GUARDED = """\
import threading


class Table:
    def __init__(self):
        self.lock = threading.Lock()
        self.rows = {}  # guarded-by: lock

    def bad_put(self, key, value):
        self.rows[key] = value

    def good_put(self, key, value):
        with self.lock:
            self.rows[key] = value
"""

POPITEM = """\
def drain(table):
    while table:
        key, value = table.popitem()
        yield key, value
"""

TIME_IN_KERNEL = """\
import time


def stamp():
    return time.time()
"""

WIRE_DUMPS = """\
import json


def encode(payload):
    return json.dumps(payload).encode("utf-8")
"""

BROAD_EXCEPT = """\
def swallow(job):
    try:
        return job()
    except Exception:
        return None
"""


def findings_by_rule(result):
    table = {}
    for finding in result.findings:
        table.setdefault(finding.rule, []).append(finding)
    return table


# -- one test per rule ---------------------------------------------------------


def test_lock_cycle(tmp_path):
    root = write_tree(tmp_path, {"repro/svc/pair.py": CYCLE})
    rules = findings_by_rule(analyze(root))
    cycles = rules.get("lock-cycle", [])
    assert cycles, "opposite-order nesting must raise lock-cycle"
    text = " ".join(f.message for f in cycles)
    assert "Pair.first" in text and "Pair.second" in text


def test_blocking_under_lock(tmp_path):
    root = write_tree(tmp_path, {"repro/svc/writer.py": FSYNC_UNDER_LOCK})
    rules = findings_by_rule(analyze(root))
    blocking = rules.get("lock-blocking", [])
    assert len(blocking) == 1
    assert "os.fsync" in blocking[0].message
    assert "Writer.lock" in blocking[0].message


def test_set_iteration_in_kernel(tmp_path):
    root = write_tree(tmp_path, {"repro/core/fold.py": SET_ITER})
    rules = findings_by_rule(analyze(root))
    assert len(rules.get("det-set-iter", [])) == 1


def test_set_iteration_ignored_outside_kernel(tmp_path):
    root = write_tree(tmp_path, {"repro/evalharness/fold.py": SET_ITER})
    rules = findings_by_rule(analyze(root))
    assert "det-set-iter" not in rules


def test_guarded_by(tmp_path):
    root = write_tree(tmp_path, {"repro/svc/table.py": GUARDED})
    rules = findings_by_rule(analyze(root))
    guarded = rules.get("guarded-by", [])
    assert len(guarded) == 1, "only the unlocked write may be flagged"
    assert guarded[0].context == "Table.bad_put"


def test_popitem(tmp_path):
    root = write_tree(tmp_path, {"repro/store/drain.py": POPITEM})
    rules = findings_by_rule(analyze(root))
    assert len(rules.get("det-popitem", [])) == 1


def test_time_in_kernel(tmp_path):
    root = write_tree(tmp_path, {"repro/core/clock.py": TIME_IN_KERNEL})
    rules = findings_by_rule(analyze(root))
    assert rules.get("det-time-random")


def test_wire_dict_order(tmp_path):
    root = write_tree(tmp_path, {"repro/service/enc.py": WIRE_DUMPS})
    rules = findings_by_rule(analyze(root))
    assert len(rules.get("wire-dict-order", [])) == 1


def test_broad_except(tmp_path):
    root = write_tree(tmp_path, {"repro/svc/guard.py": BROAD_EXCEPT})
    rules = findings_by_rule(analyze(root))
    assert len(rules.get("broad-except", [])) == 1


def test_broad_except_reraise_is_fine(tmp_path):
    source = BROAD_EXCEPT.replace("        return None", "        raise")
    root = write_tree(tmp_path, {"repro/svc/guard.py": source})
    assert "broad-except" not in findings_by_rule(analyze(root))


# -- pragmas -------------------------------------------------------------------


def test_pragma_suppresses_with_reason(tmp_path):
    source = FSYNC_UNDER_LOCK.replace(
        "            os.fsync(fd)",
        "            os.fsync(fd)  # repro-lint: allow[lock-blocking]"
        " reason=fsync-before-ack by design",
    )
    root = write_tree(tmp_path, {"repro/svc/writer.py": source})
    result = analyze(root)
    assert not result.findings
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule == "lock-blocking"


def test_reasonless_pragma_is_a_finding(tmp_path):
    source = FSYNC_UNDER_LOCK.replace(
        "            os.fsync(fd)",
        "            os.fsync(fd)  # repro-lint: allow[lock-blocking]",
    )
    root = write_tree(tmp_path, {"repro/svc/writer.py": source})
    rules = findings_by_rule(analyze(root))
    assert "lock-blocking" not in rules, "the allow still suppresses"
    assert rules.get("pragma-reason"), "but the missing reason is flagged"


def test_def_pragma_covers_callers(tmp_path):
    source = FSYNC_UNDER_LOCK.replace(
        "    def flush(self, fd):",
        "    # repro-lint: allow[lock-blocking] reason=durability contract\n"
        "    def flush(self, fd):",
    ) + (
        "\n"
        "class Caller:\n"
        "    def __init__(self):\n"
        "        self.lock = threading.Lock()\n"
        "        self.writer = Writer()\n"
        "\n"
        "    def commit(self, fd):\n"
        "        with self.lock:\n"
        "            self.writer.flush(fd)\n"
    )
    root = write_tree(tmp_path, {"repro/svc/writer.py": source})
    result = analyze(root)
    assert not result.findings, [f.format() for f in result.findings]


# -- CLI: exit codes + baseline ------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = write_tree(tmp_path / "bad", {"repro/svc/writer.py": FSYNC_UNDER_LOCK})
    clean = write_tree(tmp_path / "clean", {"repro/svc/ok.py": "X = 1\n"})
    assert main(["--root", clean]) == 0
    assert main(["--root", bad]) == 1
    assert main(["--witness", str(tmp_path / "missing.json")]) == 2
    assert main(["--rules"]) == 0
    capsys.readouterr()


def test_cli_json_report(tmp_path, capsys):
    root = write_tree(tmp_path, {"repro/svc/writer.py": FSYNC_UNDER_LOCK})
    assert main(["--root", root, "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["findings"] == 1
    assert report["findings"][0]["rule"] == "lock-blocking"
    assert report["lock_graph"]["sites"], "acquisition sites are exported"


def test_baseline_diffing(tmp_path, capsys):
    files = {"repro/svc/writer.py": FSYNC_UNDER_LOCK}
    root = write_tree(tmp_path, files)
    baseline = str(tmp_path / "baseline.json")
    assert main(["--root", root, "--write-baseline", baseline]) == 0
    # every pre-existing finding is fingerprinted away ...
    assert main(["--root", root, "--baseline", baseline]) == 0
    # ... but a new finding still gates
    write_tree(tmp_path, {"repro/core/fold.py": SET_ITER})
    assert main(["--root", root, "--baseline", baseline]) == 1
    capsys.readouterr()


def test_fingerprints_survive_line_drift(tmp_path):
    root_a = write_tree(
        tmp_path / "a", {"repro/svc/writer.py": FSYNC_UNDER_LOCK}
    )
    root_b = write_tree(
        tmp_path / "b", {"repro/svc/writer.py": "# moved\n\n" + FSYNC_UNDER_LOCK}
    )
    fp_a = [fingerprint(f) for f in analyze(root_a).findings]
    fp_b = [fingerprint(f) for f in analyze(root_b).findings]
    assert fp_a == fp_b


# -- the repo gates itself -----------------------------------------------------


@pytest.fixture(scope="module")
def repo_result():
    return analyze(default_root())


def test_repo_is_clean(repo_result):
    assert not repo_result.findings, "\n".join(
        f.format() for f in repo_result.findings
    )


def test_repo_lock_graph_has_the_memo_shard_edge(repo_result):
    edges = set(repo_result.edges)
    assert ("ShardedExprStore._memo_lock", "_Shard.lock") in edges


def test_every_repo_pragma_has_a_reason(repo_result):
    for mod in repo_result.modules.values():
        for allow in mod.pragmas.all_allows:
            assert allow.reason, f"{mod.path}:{allow.line} reasonless pragma"


# -- runtime witness -----------------------------------------------------------


def test_witness_round_trip_on_sharded_store(tmp_path, repo_result):
    from repro.lang.parser import parse
    from repro.store.sharded import ShardedExprStore
    from repro.testing import lockcheck

    recorder = lockcheck.install()
    try:
        store = ShardedExprStore(num_shards=4)
        corpus = [
            parse("a b"),
            parse("let t = a + b in t * t"),
            parse("f (g x)"),
        ]
        store.intern_many(corpus)
    finally:
        lockcheck.uninstall()

    out = tmp_path / "witness.json"
    doc = lockcheck.dump(str(out), recorder)
    assert doc["format"] == "repro-lockcheck-v1"
    assert doc["sites"], "interning must acquire labeled store locks"
    assert any(
        path == "repro/store/sharded.py" for path, _line in doc["sites"]
    )

    result = analyze(default_root(), witness=doc)
    gaps = [
        f
        for f in result.findings
        if f.rule in ("witness-gap-site", "witness-gap-edge")
    ]
    assert not gaps, "\n".join(f.format() for f in gaps)


def test_witness_gap_edge_is_detected(repo_result):
    # Fabricate an observation the static graph cannot have: a real
    # edge reversed.  The analyzer must refuse to absorb it silently.
    edges = set(repo_result.edges)
    outer_label, inner_label = next(
        (a, b) for a, b in sorted(edges) if a != b and (b, a) not in edges
    )
    site_of = {label: site for site, label in repo_result.site_table.items()}
    outer_site = site_of[inner_label]
    inner_site = site_of[outer_label]
    witness = {
        "format": "repro-lockcheck-v1",
        "sites": [list(outer_site), list(inner_site)],
        "edges": [[list(outer_site), list(inner_site)]],
    }
    result = analyze(default_root(), witness=witness)
    rules = {f.rule for f in result.findings}
    assert "witness-gap-edge" in rules


def test_witness_gap_site_is_detected():
    witness = {
        "format": "repro-lockcheck-v1",
        "sites": [["repro/store/sharded.py", 2]],
        "edges": [],
    }
    result = analyze(default_root(), witness=witness)
    rules = {f.rule for f in result.findings}
    assert "witness-gap-site" in rules


def test_witness_cross_thread_release_leaves_no_stale_hold():
    # Legal for threading.Lock: acquire on one thread, release on
    # another.  The acquirer's TLS stack must not keep the hold around
    # seeding spurious witness edges (false CI witness-gap failures).
    import threading

    from repro.testing import lockcheck

    recorder = lockcheck.install()
    try:
        lock = lockcheck._WitnessLock(recorder, reentrant=False)
        lock.acquire()
        stack = recorder.held_stack()
        assert any(entry[1] is lock for entry in stack)
        releaser = threading.Thread(target=lock.release)
        releaser.start()
        releaser.join()
        assert not any(entry[1] is lock for entry in stack)
        assert not lock.locked()
    finally:
        lockcheck.uninstall()


def test_witness_rlock_locked_works_before_py314():
    # RLock only grew .locked() in Python 3.14; the wrapper must answer
    # from its own owner tracking instead of delegating.
    from repro.testing import lockcheck

    recorder = lockcheck.install()
    try:
        rlock = lockcheck._WitnessLock(recorder, reentrant=True)
        assert rlock.locked() is False
        with rlock:
            assert rlock.locked() is True
            with rlock:  # reentry keeps it held
                assert rlock.locked() is True
            assert rlock.locked() is True
        assert rlock.locked() is False
    finally:
        lockcheck.uninstall()


def test_witness_wraps_only_repro_locks():
    import threading

    from repro.testing import lockcheck

    recorder = lockcheck.install()
    try:
        foreign = threading.Lock()  # created from test code, not repro/
        with foreign:
            pass
        assert not isinstance(foreign, lockcheck._WitnessLock)
        # The recorder may be shared with a session-wide witness
        # (REPRO_LOCKCHECK=1), so sites need not be empty -- but every
        # one must be attributed inside the package, never to test code.
        assert all(
            path.startswith("repro/")
            for path, _line in recorder.as_dict()["sites"]
        )
    finally:
        lockcheck.uninstall()
