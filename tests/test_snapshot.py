"""Tests for store snapshots (``repro.store.snapshot``) and Session
save/load, including the CLI ``repro session`` verb."""

import json

import pytest

from repro.api import Session
from repro.cli import main
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Lit
from repro.lang.parser import parse
from repro.store import ExprStore, SnapshotError, read_snapshot, write_snapshot


@pytest.fixture()
def snap_path(tmp_path):
    return str(tmp_path / "store.snap")


class TestStoreRoundTrip:
    def test_round_trip_1k_corpus_bit_identical(self, snap_path):
        """Acceptance: 1k random expressions reload with bit-identical
        root hashes and identical stats."""
        corpus = [
            random_expr(10 + (i % 40), seed=i, p_let=0.2) for i in range(1000)
        ]
        session = Session()
        roots = session.hash_corpus(corpus)
        session.intern_many(corpus)
        session.save(snap_path)

        loaded = Session.load(snap_path)
        assert loaded.store.stats.as_dict() == session.store.stats.as_dict()
        assert len(loaded.store) == len(session.store)
        assert loaded.hash_corpus(corpus) == roots
        # every class saved is findable without re-interning
        assert all(loaded.store.lookup_hash(h) is not None for h in roots)
        # and interning again creates nothing new
        before = len(loaded.store)
        loaded.intern_many(corpus)
        assert len(loaded.store) == before

    def test_canonical_trees_survive(self, snap_path):
        store = ExprStore()
        node_id = store.intern(parse(r"\x. x + (let y = 2 in y * x)"))
        original = store.expr_of(node_id)
        store.save(snap_path)
        loaded = ExprStore.load(snap_path)
        assert alpha_equivalent(loaded.expr_of(node_id), original)
        assert loaded.hash_of(node_id) == store.hash_of(node_id)

    def test_literal_kinds_round_trip(self, snap_path):
        store = ExprStore()
        exprs = [
            parse(r"\x. x + 7"),
            parse('"s"'),
        ]
        ids = [store.intern(e) for e in exprs]
        bool_id = store.intern(Lit(True))
        float_id = store.intern(Lit(2.5))
        int_id = store.intern(Lit(1))
        store.save(snap_path)
        loaded = ExprStore.load(snap_path)
        for e, i in zip(exprs, ids):
            assert loaded.intern(e) == i
        assert loaded.expr_of(bool_id).value is True
        assert loaded.expr_of(float_id).value == 2.5
        assert loaded.expr_of(int_id).value == 1
        # bool/int stay distinct classes after the round trip
        assert bool_id != int_id

    def test_memo_is_warm_after_load(self, snap_path):
        store = ExprStore()
        expr = random_expr(300, seed=7)
        store.intern(expr)
        root_hash = store.hash_expr(expr)  # memo hit, counted before save
        store.save(snap_path)
        loaded = ExprStore.load(snap_path)
        # hashing the canonical representative is a pure memo hit
        canonical = loaded.expr_of(loaded.lookup_hash(root_hash))
        assert loaded.hash_expr(canonical) == root_hash
        assert loaded.stats.hashed_nodes == store.stats.hashed_nodes
        assert loaded.stats.memo_hits == store.stats.memo_hits + 1

    def test_save_does_not_disturb_stats(self, snap_path):
        store = ExprStore()
        store.intern(random_expr(100, seed=1))
        store.clear_memo()  # force the save-time memo backfill
        before = store.stats.as_dict()
        store.save(snap_path)
        assert store.stats.as_dict() == before
        loaded = ExprStore.load(snap_path)
        assert loaded.stats.as_dict() == before

    def test_save_does_not_disturb_memo(self, snap_path):
        # the backfill must be invisible: same memoised objects before
        # and after save, even when a small memo_limit would otherwise
        # trigger a wholesale flush of legitimately warm records
        store = ExprStore(memo_limit=50)
        store.intern(random_expr(200, seed=3))
        store.clear_memo()
        warm = random_expr(20, seed=4)
        store.hash_expr(warm)  # a few warm records, well under the limit
        before = set(store._memo)
        store.save(snap_path)
        assert set(store._memo) == before

    def test_lru_capacity_mode_survives(self, snap_path):
        store = ExprStore(max_entries=64)
        for i in range(30):
            store.intern(random_expr(12, seed=i))
        store.save(snap_path)
        loaded = ExprStore.load(snap_path)
        assert loaded.max_entries == 64
        assert loaded.memo_limit == store.memo_limit
        assert len(loaded) == len(store)

    def test_meta_rides_along(self, snap_path):
        store = ExprStore()
        store.intern(parse("a b"))
        write_snapshot(store, snap_path, meta={"backend": "ours", "tag": 3})
        _loaded, header = read_snapshot(snap_path)
        assert header["meta"] == {"backend": "ours", "tag": 3}


class TestSnapshotIntegrity:
    def _saved(self, path):
        store = ExprStore()
        store.intern(random_expr(60, seed=0))
        store.save(path)
        return store

    def test_tampered_body_fails_checksum(self, snap_path):
        self._saved(snap_path)
        with open(snap_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[1] = lines[1].replace(":", ";", 1)
        with open(snap_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(snap_path)

    def test_truncated_body_fails(self, snap_path):
        self._saved(snap_path)
        with open(snap_path, "rb") as handle:
            data = handle.read()
        with open(snap_path, "wb") as handle:
            handle.write(data[: int(len(data) * 0.8)])
        with pytest.raises(SnapshotError):
            read_snapshot(snap_path)

    def test_wrong_format_rejected(self, snap_path):
        with open(snap_path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "something-else"}\n')
        with pytest.raises(SnapshotError, match="not a repro-store-snapshot"):
            read_snapshot(snap_path)

    def test_garbage_header_rejected(self, snap_path):
        with open(snap_path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        with pytest.raises(SnapshotError, match="header"):
            read_snapshot(snap_path)

    def test_malformed_record_with_valid_checksum_rejected(self, snap_path):
        # schema breaches that slip past the checksum (e.g. a dangling
        # child id with a recomputed checksum) must fail as
        # SnapshotError, not leak a bare KeyError
        import hashlib

        body = (
            json.dumps(
                {"i": 0, "h": 1, "k": "App", "z": 3, "c": [998, 999],
                 "p": None, "s": 1, "v": 1, "m": {}},
                separators=(",", ":"), sort_keys=True,
            )
            + "\n"
        ).encode("utf-8")
        header = {
            "format": "repro-store-snapshot-v1",
            "bits": 64, "seed": 1, "next_id": 1, "entries": 1,
            "max_entries": None, "memo_limit": None, "stats": {},
            "meta": {},
            "checksum": "sha256:" + hashlib.sha256(body).hexdigest(),
        }
        with open(snap_path, "wb") as handle:
            handle.write(json.dumps(header).encode() + b"\n" + body)
        with pytest.raises(SnapshotError, match="malformed snapshot entry"):
            read_snapshot(snap_path)

    def test_header_missing_required_field_rejected(self, snap_path):
        # a well-formed header that lacks e.g. "bits" must fail as
        # SnapshotError, not leak a KeyError
        import hashlib

        header = {
            "format": "repro-store-snapshot-v1",
            "checksum": "sha256:" + hashlib.sha256(b"").hexdigest(),
        }
        with open(snap_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
        with pytest.raises(SnapshotError, match="missing required"):
            read_snapshot(snap_path)


class TestSessionLoad:
    def test_backend_persisted_and_overridable(self, snap_path):
        session = Session()
        session.intern(parse("a b"))
        session.save(snap_path)
        assert Session.load(snap_path).backend.name == "ours"
        assert Session.load(snap_path, backend="ours_lazy").backend.name == (
            "ours_lazy"
        )

    def test_bits_and_seed_persisted(self, snap_path):
        session = Session(bits=32, seed=99)
        expr = parse(r"\x. x + 7")
        value = session.hash(expr)
        session.intern(expr)
        session.save(snap_path)
        loaded = Session.load(snap_path)
        assert loaded.combiners.bits == 32
        assert loaded.hash(parse(r"\y. y + 7")) == value


class TestSessionCLI:
    @pytest.fixture()
    def corpus_files(self, tmp_path):
        a = tmp_path / "a.lam"
        b = tmp_path / "b.lam"
        a.write_text(r"\x. x + 7")
        b.write_text(r"\y. y + 7")
        return [str(a), str(b)]

    def test_session_emits_json_records(self, capsys, corpus_files):
        assert main(["session", *corpus_files]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert len(records) == 2
        # alpha-equivalent corpus: same hash, same canonical node id
        assert records[0]["hash"] == records[1]["hash"]
        assert records[0]["node_id"] == records[1]["node_id"]
        # "known" means present before this invocation's corpus was
        # added, so both copies of the fresh class report False
        assert records[0]["known"] is False and records[1]["known"] is False

    def test_session_save_load_check(self, capsys, corpus_files, tmp_path):
        snap = str(tmp_path / "session.snap")
        assert main(["session", *corpus_files, "--save", snap]) == 0
        capsys.readouterr()
        assert main(["session", "--load", snap, *corpus_files, "--check"]) == 0
        out = capsys.readouterr()
        for line in out.out.splitlines():
            assert json.loads(line)["known"] is True

    def test_session_check_fails_on_unknown_expr(self, capsys, corpus_files, tmp_path):
        snap = str(tmp_path / "session.snap")
        assert main(["session", corpus_files[0], "--save", snap]) == 0
        other = tmp_path / "other.lam"
        other.write_text("a (b c)")
        assert main(
            ["session", "--load", snap, str(other), "--check"]
        ) == 1
        assert "CHECK FAILED" in capsys.readouterr().err

    def test_session_check_counts_all_copies_of_a_missing_class(
        self, capsys, corpus_files, tmp_path
    ):
        # regression: known flags are computed before any interning, so
        # the second alpha-equivalent copy of a class absent from the
        # snapshot must also report known=false
        snap = str(tmp_path / "session.snap")
        known_file = tmp_path / "known.lam"
        known_file.write_text("k1 k2")
        assert main(["session", str(known_file), "--save", snap]) == 0
        capsys.readouterr()
        assert main(
            ["session", "--load", snap, *corpus_files, "--check"]
        ) == 1
        out = capsys.readouterr()
        records = [json.loads(line) for line in out.out.splitlines()]
        assert [r["known"] for r in records] == [False, False]
        assert "2 expression(s) not present" in out.err

    def test_session_hashes_match_hash_command(self, capsys, corpus_files):
        main(["session", corpus_files[0]])
        session_hash = json.loads(capsys.readouterr().out.splitlines()[0])["hash"]
        main(["hash", corpus_files[0]])
        assert capsys.readouterr().out.strip() == session_hash

    def test_session_stats_flag(self, capsys, corpus_files):
        assert main(["session", *corpus_files, "--stats"]) == 0
        last = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert last["backend"] == "ours" and last["entries"] > 0

    def test_session_backend_flag(self, capsys, corpus_files):
        assert main(["session", *corpus_files, "--backend", "structural"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert all(r["backend"] == "structural" for r in records)

    def test_check_works_with_non_default_backend(self, capsys, corpus_files, tmp_path):
        # regression: known/--check must be decided on the canonical
        # store hash, not the selected backend's hash
        snap = str(tmp_path / "session.snap")
        assert main(["session", *corpus_files, "--save", snap]) == 0
        capsys.readouterr()
        assert main(
            ["session", "--load", snap, "--backend", "ours_lazy",
             *corpus_files, "--check"]
        ) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert all(r["known"] is True for r in records)
        assert all(r["backend"] == "ours_lazy" for r in records)

    @pytest.mark.parametrize(
        "argv",
        [
            ["--no-store", "--save", "x.snap"],
            ["--no-store", "--check"],
            ["--check"],  # without --load
            ["--load", "x.snap", "--bits", "32"],
            ["--load", "x.snap", "--no-store"],
            ["--load", "x.snap", "--seed", "1"],
            ["--load", "x.snap", "--max-entries", "4"],
        ],
    )
    def test_conflicting_flags_rejected(self, capsys, corpus_files, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(["session", *corpus_files, *argv])
        assert excinfo.value.code == 2
        capsys.readouterr()
