"""Hash-width matrix: the core invariants at every supported width.

Theorem 6.7 is parametric in ``b``; these tests pin the implementation
to that parametricity -- everything that holds at the 64-bit default
must hold at 16 bits (Appendix B's width), at odd widths, and in the
two-lane 128-bit configuration the paper recommends for "very
large-scale applications".
"""

import pytest
from hypothesis import given, settings

from repro.core.combiners import HashCombiners
from repro.core.esummary import hash_esummary_tree, summarise_all_tagged
from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.core.linear_lazy import alpha_hash_all_lazy
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.expr import Lit
from repro.lang.traversal import preorder, replace_at

WIDTHS = (16, 32, 64, 100, 128)


def _expr(seed: int):
    return random_expr(70 + seed % 30, seed=seed, p_let=0.25, p_lit=0.15)


@pytest.mark.parametrize("bits", WIDTHS)
class TestPerWidth:
    def test_outputs_in_range(self, bits):
        combiners = HashCombiners(bits=bits, seed=bits)
        hashes = alpha_hash_all(_expr(1), combiners)
        for _, _, value in hashes.items():
            assert 0 <= value < (1 << bits)

    def test_alpha_invariance(self, bits):
        combiners = HashCombiners(bits=bits, seed=bits)
        e = _expr(2)
        renamed = alpha_rename(e)
        assert (
            alpha_hash_all(e, combiners).root_hash
            == alpha_hash_all(renamed, combiners).root_hash
        )

    def test_step_agreement(self, bits):
        """Fast Step-2 == hash of materialised Step-1, at every width."""
        combiners = HashCombiners(bits=bits, seed=bits + 1)
        e = _expr(3)
        fast = alpha_hash_all(e, combiners)
        summaries = summarise_all_tagged(e)
        for node in preorder(e):
            assert fast.hash_of(node) == hash_esummary_tree(
                combiners, summaries[id(node)]
            )

    def test_lazy_alpha_invariance(self, bits):
        combiners = HashCombiners(bits=bits, seed=bits + 2)
        e = _expr(4)
        renamed = alpha_rename(e)
        assert (
            alpha_hash_all_lazy(e, combiners).root_hash
            == alpha_hash_all_lazy(renamed, combiners).root_hash
        )

    def test_incremental_agreement(self, bits):
        combiners = HashCombiners(bits=bits, seed=bits + 3)
        e = _expr(5)
        hasher = IncrementalHasher(e, combiners)
        from repro.lang.traversal import preorder_with_paths

        path = [p for p, n in preorder_with_paths(e) if n.size <= 4][0]
        hasher.replace(path, Lit(1))
        batch = alpha_hash_all(replace_at(e, path, Lit(1)), combiners)
        assert hasher.root_hash == batch.root_hash

    def test_widths_are_independent_families(self, bits):
        """The same seed at different widths must not produce related
        hashes (each width re-derives its combiner family)."""
        e = _expr(6)
        value = alpha_hash_all(e, HashCombiners(bits=bits, seed=9)).root_hash
        value64 = alpha_hash_all(e, HashCombiners(bits=64, seed=9)).root_hash
        if bits != 64:
            assert value != (value64 & ((1 << bits) - 1)) or bits > 64


class TestCollisionRatesByWidth:
    def test_smaller_widths_collide_more(self):
        """Sanity: at 8 bits distinct expressions collide readily, at 64
        they never do (on this sample)."""
        small = HashCombiners(bits=8, seed=1)
        big = HashCombiners(bits=64, seed=1)
        seen_small: set[int] = set()
        seen_big: set[int] = set()
        collisions_small = 0
        collisions_big = 0
        for seed in range(300):
            e = random_expr(20 + seed % 11, seed=seed)
            value_small = alpha_hash_all(e, small).root_hash
            value_big = alpha_hash_all(e, big).root_hash
            if value_small in seen_small:
                collisions_small += 1
            if value_big in seen_big:
                collisions_big += 1
            seen_small.add(value_small)
            seen_big.add(value_big)
        assert collisions_small > 0
        assert collisions_big == 0
