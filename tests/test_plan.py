"""Tests for the request -> plan -> execute pipeline.

The contract under test (ISSUE 5): the ``HashRequest`` ->
``ExecutionPlan`` -> execute path is bit-identical to
``alpha_hash_all`` across engines (tree/arena) and executors
(serial/pool), legacy ``Session.hash_corpus(engine=..., workers=...)``
kwargs still work behind a ``DeprecationWarning``, and third-party
backends register through the ``repro.backends`` entry-point group.
"""

import random

import pytest

from repro.api import (
    ARENA_NODE_THRESHOLD,
    BACKENDS,
    AsyncExecutor,
    ExecutionPlan,
    HashRequest,
    InternRequest,
    PlanError,
    Planner,
    Session,
    get_backend,
    get_executor,
)
from repro.api.backends import _ALIASES, load_entry_point_backends
from repro.core.arena import ARENA_MIN_NODES, plan_corpus_engine
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.parser import parse


def small_corpus(n_items: int = 40, seed: int = 3):
    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.2:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(30, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


@pytest.fixture(scope="module")
def corpus():
    return small_corpus()


@pytest.fixture(scope="module")
def expected(corpus):
    return [alpha_hash_all(e).root_hash for e in corpus]


class TestRequests:
    def test_request_freezes_corpus(self, corpus):
        request = HashRequest(iter(corpus))
        assert len(request) == len(corpus)
        assert request.total_nodes == sum(e.size for e in corpus)

    def test_request_rejects_bad_hints(self, corpus):
        with pytest.raises(ValueError, match="engine"):
            HashRequest(corpus, engine="warp")
        with pytest.raises(ValueError, match="mode"):
            HashRequest(corpus, mode="fiber")
        with pytest.raises(ValueError, match="workers"):
            HashRequest(corpus, workers=-1)
        with pytest.raises(TypeError, match="unknown request hint"):
            HashRequest(corpus, warp_factor=9)
        with pytest.raises(TypeError, match="expressions"):
            HashRequest(["not an expr"])

    def test_hints_view(self, corpus):
        assert HashRequest(corpus).hints() == {}
        assert HashRequest(corpus, engine="tree", workers=2).hints() == {
            "engine": "tree",
            "workers": 2,
        }

    def test_intern_request_kind(self, corpus):
        assert HashRequest(corpus).kind == "hash"
        assert InternRequest(corpus).kind == "intern"


class TestPlanner:
    def test_auto_engine_consults_the_one_threshold(self, corpus):
        session = Session()
        plan = session.plan(HashRequest(corpus))
        assert plan.engine == "tree"  # tiny corpus
        # The planner's constant and the arena module's are one value.
        assert ARENA_NODE_THRESHOLD == ARENA_MIN_NODES
        session.planner = Planner(arena_threshold=1)
        replanned = session.plan(HashRequest(corpus))
        assert replanned.engine == "arena"
        assert any("threshold 1" in r for r in replanned.reasons)

    def test_plan_corpus_engine_matches_planner(self, corpus):
        # Store/parallel layers resolve "auto" through the same policy.
        session = Session()
        assert (
            plan_corpus_engine("auto", corpus)
            == session.plan(HashRequest(corpus)).engine
        )

    def test_plan_is_concrete_and_inspectable(self, corpus):
        plan = Session(workers=3).plan(HashRequest(corpus))
        assert isinstance(plan, ExecutionPlan)
        assert plan.engine in ("tree", "arena")
        assert plan.executor == "pool" and plan.workers == 3
        assert plan.corpus_items == len(corpus)
        text = plan.explain()
        assert "engine=" in text and "workers=3" in text
        as_dict = plan.as_dict()
        assert as_dict["executor"] == "pool"
        assert isinstance(as_dict["reasons"], list) or isinstance(
            as_dict["reasons"], tuple
        )

    def test_workers_hint_overrides_session_default(self, corpus):
        session = Session(workers=4)
        assert session.plan(HashRequest(corpus, workers=1)).executor == "serial"
        assert session.plan(HashRequest(corpus)).workers == 4

    def test_single_item_stays_serial(self):
        plan = Session(workers=4).plan(HashRequest([parse("a b")]))
        assert plan.executor == "serial" and plan.workers == 1

    def test_non_store_backend_stays_serial(self, corpus):
        plan = Session(backend="debruijn", workers=4).plan(HashRequest(corpus))
        assert plan.executor == "serial"
        assert not plan.store_backed
        assert any("its own pass" in r for r in plan.reasons)

    def test_determinism_hints_enforced(self, corpus):
        session = Session(bits=64)
        ok = HashRequest(corpus, bits=64)
        assert session.plan(ok).bits == 64
        with pytest.raises(PlanError, match="bits"):
            session.plan(HashRequest(corpus, bits=32))
        with pytest.raises(PlanError, match="seed"):
            session.plan(HashRequest(corpus, seed=123))

    def test_intern_needs_store(self, corpus):
        with pytest.raises(PlanError, match="use_store"):
            Session(use_store=False).plan(InternRequest(corpus))

    def test_unknown_backend_is_a_plan_error(self, corpus):
        with pytest.raises(PlanError, match="unknown backend"):
            Session().plan(HashRequest(corpus, backend="warp"))

    def test_sharded_session_plan_reports_shards(self, corpus):
        plan = Session(num_shards=4).plan(HashRequest(corpus))
        assert plan.num_shards == 4


class TestExecuteBitIdentity:
    """The acceptance matrix: engines x executors == alpha_hash_all."""

    @pytest.mark.parametrize("engine", ["tree", "arena"])
    def test_serial_executor(self, corpus, expected, engine):
        session = Session()
        assert session.execute(HashRequest(corpus, engine=engine)) == expected

    @pytest.mark.parametrize("engine", ["tree", "arena"])
    def test_pool_executor(self, corpus, expected, engine):
        with Session() as session:
            request = HashRequest(corpus, engine=engine, workers=2)
            plan = session.plan(request)
            assert plan.executor == "pool"
            assert session.execute(request, plan=plan) == expected

    def test_thread_mode_pool(self, corpus, expected):
        with Session() as session:
            assert (
                session.execute(HashRequest(corpus, workers=2, mode="thread"))
                == expected
            )

    def test_async_executor_runs_the_plan(self, corpus, expected):
        session = Session()
        request = HashRequest(corpus)
        plan = session.plan(request)
        with AsyncExecutor(max_workers=2) as bridge:
            assert bridge.run(session, request, plan) == expected

    def test_execute_without_store(self, corpus, expected):
        assert Session(use_store=False).execute(HashRequest(corpus)) == expected

    def test_intern_request_matches_intern_many(self, corpus):
        serial = Session()
        ids = serial.execute(InternRequest(corpus))
        assert ids == Session().intern_many(corpus)
        hashes = [serial.store.entry(i).hash for i in ids]
        assert hashes == [alpha_hash_all(e).root_hash for e in corpus]

    def test_executor_registry(self):
        assert get_executor("serial") is get_executor("serial")
        assert get_executor("pool").name == "pool"
        assert get_executor("async") is not get_executor("async")  # stateful
        with pytest.raises(KeyError, match="unknown executor"):
            get_executor("warp")


class TestLegacyKwargShim:
    def test_hash_corpus_kwargs_warn_and_agree(self, corpus, expected):
        session = Session()
        with pytest.warns(DeprecationWarning, match="HashRequest"):
            legacy = session.hash_corpus(corpus, engine="tree")
        assert legacy == expected
        with Session() as pooled, pytest.warns(DeprecationWarning):
            assert pooled.hash_corpus(corpus, workers=2) == expected

    def test_intern_many_kwargs_warn_and_agree(self, corpus):
        reference = Session().intern_many(corpus)
        session = Session()
        with pytest.warns(DeprecationWarning, match="InternRequest"):
            assert session.intern_many(corpus, engine="tree") == reference

    def test_plain_calls_do_not_warn(self, corpus, expected):
        import warnings

        session = Session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert session.hash_corpus(corpus) == expected
            session.intern_many(corpus)


class _EntryPointStub:
    def __init__(self, name, target):
        self.name = name
        self._target = target

    def load(self):
        if isinstance(self._target, Exception):
            raise self._target
        return self._target


@pytest.fixture
def clean_registry():
    """Let a test register plugin backends and always clean them up."""
    added = []
    yield added
    for name in added:
        BACKENDS.pop(name, None)
        _ALIASES.pop(name, None)


class TestEntryPointBackends:
    def test_plain_callable_is_wrapped(self, monkeypatch, clean_registry):
        import repro.api.backends as backends_module

        def fake_hash_all(expr, combiners=None):
            return alpha_hash_all(expr, combiners)

        monkeypatch.setattr(
            backends_module,
            "_iter_entry_points",
            lambda: (_EntryPointStub("plugin_hash", fake_hash_all),),
        )
        clean_registry.append("plugin_hash")
        loaded = load_entry_point_backends(refresh=True)
        assert loaded == ("plugin_hash",)
        backend = get_backend("plugin_hash")
        assert backend.kind == "plugin"
        assert not backend.store_backed
        expr = parse(r"\x. x + 7")
        assert (
            backend.hash_all(expr).root_hash == alpha_hash_all(expr).root_hash
        )
        # The Session front door sees it like any registered backend.
        assert Session(backend="plugin_hash").hash(expr) == alpha_hash_all(
            expr
        ).root_hash

    def test_ready_backend_passes_through(self, monkeypatch, clean_registry):
        import repro.api.backends as backends_module
        from repro.api import FunctionBackend

        ready = FunctionBackend(
            name="plugin_ready",
            label="ready-made",
            kind="plugin",
            section="entry-point",
            store_backed=False,
            run=lambda e, c=None: alpha_hash_all(e, c),
        )
        monkeypatch.setattr(
            backends_module,
            "_iter_entry_points",
            lambda: (_EntryPointStub("plugin_ready", ready),),
        )
        clean_registry.append("plugin_ready")
        assert load_entry_point_backends(refresh=True) == ("plugin_ready",)
        assert get_backend("plugin_ready") is ready

    def test_broken_plugin_warns_and_is_skipped(
        self, monkeypatch, clean_registry
    ):
        import repro.api.backends as backends_module

        monkeypatch.setattr(
            backends_module,
            "_iter_entry_points",
            lambda: (
                _EntryPointStub("plugin_broken", RuntimeError("boom")),
                _EntryPointStub("plugin_shapeless", object()),
            ),
        )
        with pytest.warns(RuntimeWarning):
            assert load_entry_point_backends(refresh=True) == ()
        assert "plugin_broken" not in BACKENDS
        assert "plugin_shapeless" not in BACKENDS

    def test_builtins_are_never_clobbered(self, monkeypatch, clean_registry):
        import repro.api.backends as backends_module

        monkeypatch.setattr(
            backends_module,
            "_iter_entry_points",
            lambda: (_EntryPointStub("ours", lambda e, c=None: None),),
        )
        assert load_entry_point_backends(refresh=True) == ()
        assert get_backend("ours").kind == "table1"

    def test_scan_is_lazy_and_idempotent(self, monkeypatch, clean_registry):
        import repro.api.backends as backends_module

        calls = []

        def fake_iter():
            calls.append(1)
            return ()

        monkeypatch.setattr(
            backends_module, "_iter_entry_points", fake_iter
        )
        load_entry_point_backends(refresh=True)
        load_entry_point_backends()
        assert len(calls) == 1  # second call short-circuits
