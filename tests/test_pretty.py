"""Unit tests for the pretty printer."""

from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.parser import parse
from repro.lang.pretty import pretty


class TestBasics:
    def test_var(self):
        assert pretty(Var("x")) == "x"

    def test_lits(self):
        assert pretty(Lit(3)) == "3"
        assert pretty(Lit(3.5)) == "3.5"
        assert pretty(Lit(True)) == "true"
        assert pretty(Lit(False)) == "false"
        assert pretty(Lit("hi")) == '"hi"'

    def test_string_escaping(self):
        assert pretty(Lit('a"b')) == '"a\\"b"'

    def test_lambda(self):
        assert pretty(parse(r"\x. x")) == "\\x. x"

    def test_let(self):
        assert pretty(parse("let a = 1 in a")) == "let a = 1 in a"


class TestSugar:
    def test_infix_add(self):
        assert pretty(parse("x + 7")) == "x + 7"

    def test_infix_precedence_no_redundant_parens(self):
        assert pretty(parse("a + b * c")) == "a + b * c"

    def test_infix_parens_needed(self):
        assert pretty(parse("(a + b) * c")) == "(a + b) * c"

    def test_sugar_off(self):
        assert pretty(parse("x + 7"), sugar=False) == "add x 7"

    def test_partial_prim_application_not_sugared(self):
        assert pretty(App(Var("add"), Var("x"))) == "add x"


class TestParenthesisation:
    def test_app_arg_parens(self):
        assert pretty(parse("f (g x)")) == "f (g x)"

    def test_app_fn_chain_flat(self):
        assert pretty(parse("f a b")) == "f a b"

    def test_lambda_as_argument(self):
        assert pretty(parse(r"foo (\x. x)")) == "foo (\\x. x)"

    def test_lambda_in_operand(self):
        text = pretty(App(App(Var("add"), Lam("x", Var("x"))), Lit(1)))
        assert text == "(\\x. x) + 1"

    def test_let_in_arg_position(self):
        e = App(Var("f"), Let("a", Lit(1), Var("a")))
        assert pretty(e) == "f (let a = 1 in a)"


class TestScaling:
    def test_max_len_truncation(self):
        e = parse("a")
        for _ in range(100):
            e = App(e, Var("b"))
        text = pretty(e, max_len=30)
        assert text.endswith("...")
        assert len(text) <= 40

    def test_deep_chain_no_recursion_error(self):
        e = Var("x")
        for i in range(30_000):
            e = Lam(f"v{i}", e)
        text = pretty(e, max_len=50)
        assert text.startswith("\\v29999. ")

    def test_full_render_of_deep_chain(self):
        e = Var("x")
        for i in range(5_000):
            e = Lam("v", e)
        text = pretty(e)
        assert text.count("\\v. ") == 5_000
