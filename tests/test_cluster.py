"""Tests for the distributed hash cluster (ISSUE 7).

An in-process coordinator fronting two shard-identity ``ReproServer``
nodes on localhost: hashing fans out bit-identically, interning routes
by alpha-hash ownership, folded stats are conserved sums, the merged
snapshot union equals a flat store, a dead shard degrades to a bounded
503 that names it, and replicas catch up over ``/v1/snapshot/delta``.
"""

import random
import time

import pytest

from repro.api import RemoteSession, Session
from repro.cluster import ClusterCoordinator, ClusterTopology, TopologyError
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.sexpr import to_wire
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.store import snapshot_from_bytes


def mixed_corpus(n_items, seed=13, size=40):
    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.2:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(size, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


@pytest.fixture(scope="module")
def corpus():
    return mixed_corpus(100)


@pytest.fixture(scope="module")
def expected(corpus):
    return [alpha_hash_all(e).root_hash for e in corpus]


def start_cluster(shard_count=2, **coordinator_kwargs):
    nodes = [
        ReproServer(port=0, shard_id=i, shard_count=shard_count).start()
        for i in range(shard_count)
    ]
    coordinator_kwargs.setdefault("retries", 1)
    coordinator_kwargs.setdefault("backoff", 0.05)
    coordinator_kwargs.setdefault("timeout", 30.0)
    coordinator = ClusterCoordinator(
        [node.url for node in nodes], port=0, **coordinator_kwargs
    ).start()
    return coordinator, nodes


@pytest.fixture(scope="module")
def cluster(corpus):
    coordinator, nodes = start_cluster()
    # Interned once up front: every routing/conservation test below
    # observes the same warm cluster.
    reply = ServiceClient(coordinator.url).intern_wire(
        [to_wire(e) for e in corpus]
    )
    yield coordinator, nodes, reply
    coordinator.close()
    for node in nodes:
        node.close()


class TestTopology:
    def test_ownership_is_hash_mod_count(self):
        topo = ClusterTopology(["http://a:1", "http://b:2", "http://c:3"])
        assert topo.num_shards == 3
        for digest in (0, 1, 2, 3, 12345, 2**63):
            assert topo.owner_of(digest) == digest % 3
            assert topo.url_of(topo.owner_of(digest))

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(TopologyError, match="at least one"):
            ClusterTopology([])
        with pytest.raises(TopologyError, match="duplicate"):
            ClusterTopology(["http://a:1", "http://a:1/"])
        with pytest.raises(TopologyError, match="http"):
            ClusterTopology(["ftp://a:1"])


class TestShardIdentity:
    def test_identity_validation(self):
        with pytest.raises(ValueError, match="go together"):
            ReproServer(port=0, shard_id=0)
        with pytest.raises(ValueError, match="shard_id must be in"):
            ReproServer(port=0, shard_id=2, shard_count=2)

    def test_node_rejects_foreign_keys(self, cluster, corpus, expected):
        _coordinator, nodes, _reply = cluster
        foreign = [
            e for e, h in zip(corpus, expected) if h % len(nodes) == 1
        ][:3]
        client = ServiceClient(nodes[0].url, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.intern_many(foreign)
        assert excinfo.value.status == 409
        assert "shard 0/2 does not own" in str(excinfo.value)

    def test_health_carries_shard_identity(self, cluster):
        _coordinator, nodes, _reply = cluster
        health = ServiceClient(nodes[1].url).health()
        assert health["shard_id"] == 1
        assert health["shard_count"] == 2
        assert health["version"] > 0


class TestClusterRouting:
    def test_hash_fanout_bit_identical(self, cluster, corpus, expected):
        coordinator, _nodes, _reply = cluster
        client = ServiceClient(coordinator.url)
        assert client.hash_corpus(corpus) == expected

    def test_intern_reply_shape(self, cluster, corpus, expected):
        _coordinator, _nodes, reply = cluster
        assert reply["hashes"] == expected
        assert len(reply["ids"]) == len(corpus)
        assert all(isinstance(i, int) for i in reply["ids"])
        assert reply["owners"] == [h % 2 for h in expected]

    def test_routing_invariant_owner_holds_every_root(
        self, cluster, expected
    ):
        _coordinator, nodes, _reply = cluster
        shard_hashes = []
        for node in nodes:
            store, _header = snapshot_from_bytes(
                ServiceClient(node.url).fetch_snapshot()
            )
            shard_hashes.append({e.hash for e in store.entries()})
        for digest in expected:
            assert digest in shard_hashes[digest % len(nodes)]

    def test_folded_stats_are_conserved_sums(self, cluster):
        coordinator, _nodes, _reply = cluster
        stats = ServiceClient(coordinator.url).stats()
        assert stats["shard_count"] == 2
        assert stats["entries"] == sum(
            s["entries"] for s in stats["shards"]
        )
        for key, total in stats["store"].items():
            assert total == sum(
                s["store"].get(key, 0) for s in stats["shards"]
            ), key

    def test_merged_union_equals_flat_store(self, cluster, corpus):
        coordinator, _nodes, _reply = cluster
        merged, header = snapshot_from_bytes(
            ServiceClient(coordinator.url).fetch_snapshot()
        )
        with Session() as flat:
            for expr in corpus:
                flat.intern(expr)
            flat_hashes = {e.hash for e in flat.store.entries()}
        assert {e.hash for e in merged.entries()} == flat_hashes
        assert len(merged) == len(flat_hashes)
        assert header["meta"]["cluster"]["shard_count"] == 2

    def test_coordinator_metrics_fold(self, cluster):
        coordinator, _nodes, _reply = cluster
        metrics = ServiceClient(coordinator.url).metrics()
        assert metrics["ok"] is True
        assert metrics["shard_count"] == 2
        assert len(metrics["shards"]) == 2
        for shard in metrics["shards"]:
            assert shard["ok"] is True
            assert shard["metrics"]["store"]["entries"] > 0

    def test_remote_session_facade(self, cluster, corpus, expected):
        coordinator, _nodes, _reply = cluster
        with RemoteSession(coordinator.url, retries=1) as remote:
            assert remote.ping() is True
            assert remote.hash_corpus(corpus[:10]) == expected[:10]
            assert remote.hash(corpus[0]) == expected[0]
            stats = remote.stats()
            assert stats["shard_count"] == 2
            pulled = remote.pull()
            try:
                assert pulled.hash_corpus(corpus[:10]) == expected[:10]
            finally:
                pulled.close()


class TestDegradation:
    def test_dead_shard_hash_reroutes_and_intern_503s(
        self, corpus, expected
    ):
        coordinator, nodes = start_cluster(
            timeout=5.0, retries=1, backoff=0.05, down_ttl=30.0
        )
        try:
            client = ServiceClient(coordinator.url, retries=0, timeout=30.0)
            client.intern_many(corpus[:30])
            nodes[1].close()  # SIGKILL equivalent: the listener is gone

            # Hashing is stateless: chunks re-route to the live shard.
            assert client.hash_corpus(corpus[:20]) == expected[:20]

            # Interning keys the dead shard owns is a bounded 503
            # naming it, not a hang.
            doomed = [
                e for e, h in zip(corpus, expected) if h % 2 == 1
            ][:5]
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.intern_many(doomed)
            elapsed = time.monotonic() - started
            assert excinfo.value.status == 503
            assert "shard 1" in str(excinfo.value)
            assert elapsed < 20

            # The down cache makes the next failure immediate.
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.intern_many(doomed)
            assert excinfo.value.status == 503
            assert time.monotonic() - started < 5

            # Live-shard keys still intern fine.
            alive = [
                e for e, h in zip(corpus, expected) if h % 2 == 0
            ][:5]
            assert len(client.intern_many(alive)) == 5

            health = client.health()
            assert health["ok"] is False
            assert [s["ok"] for s in health["shards"]] == [True, False]
        finally:
            coordinator.close()
            for node in nodes:
                node.close()

    def test_stats_require_every_shard(self, corpus):
        coordinator, nodes = start_cluster(
            timeout=5.0, retries=0, backoff=0.05, down_ttl=30.0
        )
        try:
            client = ServiceClient(coordinator.url, retries=0, timeout=30.0)
            client.intern_many(corpus[:10])
            nodes[0].close()
            with pytest.raises(ServiceError) as excinfo:
                client.stats()
            assert excinfo.value.status == 503
            assert "shard 0" in str(excinfo.value)
        finally:
            coordinator.close()
            for node in nodes:
                node.close()


class TestDeltaOverHTTP:
    def test_replica_catch_up_without_full_transfer(self, corpus, expected):
        with ReproServer(port=0) as node:
            client = ServiceClient(node.url)
            client.intern_many(corpus[:50])

            replica = Session.from_snapshot_bytes(client.fetch_snapshot())
            try:
                baseline = len(replica.store)
                full_before = len(client.fetch_snapshot())
                client.intern_many(corpus[50:])

                delta = client.fetch_delta(replica.store.version)
                assert len(delta) < full_before  # incremental, not full

                report = client.catch_up(replica)
                assert report["applied"] > 0
                assert len(replica.store) > baseline

                server_stats = client.stats()
                assert len(replica.store) == server_stats["entries"]
                assert (
                    replica.store.version == client.health()["version"]
                )
                # Bit-identical: the replica resolves every corpus root
                # to the same hash the server computed.
                assert replica.hash_corpus(corpus) == expected
                second = client.catch_up(replica)
                assert second == {
                    "applied": 0,
                    "skipped": 0,
                    "version": replica.store.version,
                }
            finally:
                replica.close()

    def test_delta_endpoint_validates_since(self):
        with ReproServer(port=0) as node:
            client = ServiceClient(node.url, retries=0)
            client.intern_many(mixed_corpus(5, seed=7))
            with pytest.raises(ServiceError) as excinfo:
                client.fetch_delta(10**9)
            assert excinfo.value.status == 409
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/v1/snapshot/delta")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/v1/snapshot/delta?since=nope")
            assert excinfo.value.status == 400
