"""Tests for the ``repro.service`` HTTP server/client pair (ISSUE 5).

Round-trip contract over a live localhost server: remote hashing is
bit-identical to ``alpha_hash_all``, interning lands on server node
ids, and snapshots upload/download over the existing versioned wire
format with entry-count conservation.
"""

import random
import time

import pytest

from repro.api import Session
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.parser import parse
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.store import ShardedExprStore, snapshot_from_bytes


def mixed_corpus(n_items: int, seed: int = 13, size: int = 40):
    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.2:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(size, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


@pytest.fixture(scope="module")
def corpus():
    return mixed_corpus(120)


@pytest.fixture(scope="module")
def expected(corpus):
    return [alpha_hash_all(e).root_hash for e in corpus]


@pytest.fixture()
def server():
    with ReproServer(port=0) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestHashEndpoint:
    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["backend"] == "ours"
        assert health["bits"] == 64

    def test_remote_hash_bit_identical_to_alpha_hash_all(
        self, client, corpus, expected
    ):
        assert client.hash_corpus(corpus) == expected

    def test_remote_hash_matches_local_session(self, client, corpus):
        assert client.hash_corpus(corpus) == Session().hash_corpus(corpus)

    def test_remote_plan_is_echoed(self, client, corpus):
        hashes, plan = client.hash_corpus(
            corpus, engine="arena", with_plan=True
        )
        assert plan["engine"] == "arena"
        assert plan["executor"] == "serial"
        assert hashes == client.hash_corpus(corpus, engine="tree")

    def test_alternate_backend(self, client):
        expr = parse(r"\x. x + 7")
        from repro.api import get_backend

        remote = client.hash_corpus([expr], backend="debruijn")
        assert remote == [get_backend("debruijn").hash_all(expr).root_hash]

    def test_deep_expression_survives_the_wire(self, client):
        # A depth-2000 application chain: the flat postorder wire
        # encoding and the snapshot format are both iteration-only.
        from repro.lang.expr import App, Var

        deep = Var("x")
        for _ in range(2000):
            deep = App(Var("f"), deep)
        assert client.hash_corpus([deep]) == [alpha_hash_all(deep).root_hash]


class TestInternAndStats:
    def test_intern_lands_on_server_ids(self, client, corpus):
        ids = client.intern_many(corpus)
        assert len(ids) == len(corpus)
        # Duplicated corpus items collapse to one id.
        assert ids[0] == client.intern_many([corpus[0]])[0]
        stats = client.stats()
        assert stats["entries"] > 0
        assert stats["requests_served"] >= 2

    def test_stats_shape_matches_session_stats(self, client):
        stats = client.stats()
        for key in ("backend", "bits", "seed", "store_enabled", "entries"):
            assert key in stats
        assert stats["store_enabled"] is True


class TestSnapshotEndpoints:
    def test_download_restores_warm_store(self, client, corpus, expected):
        client.intern_many(corpus)
        data = client.fetch_snapshot()
        store, header = snapshot_from_bytes(data)
        assert header["format"] == "repro-store-snapshot-v1"
        assert store.hash_corpus(corpus) == expected

    def test_pull_session(self, client, corpus, expected):
        client.intern_many(corpus)
        local = client.pull_session()
        assert local.hash_corpus(corpus) == expected

    def test_upload_merge_conserves_classes(self, server, client, corpus):
        """upload -> merge -> stats conservation: server entries equal
        the union of both stores' classes, hashes intact."""
        half_a, half_b = corpus[:60], corpus[60:]
        client.intern_many(half_a)
        entries_before = client.stats()["entries"]

        local = Session()
        local.intern_many(half_b)

        reply = client.push_snapshot(local)
        assert reply["merged_classes"] == len(local.store)

        union = Session()
        union.intern_many(corpus)
        assert client.stats()["entries"] == len(union.store)
        assert client.stats()["entries"] >= entries_before

        # The merged store serves both halves bit-identically.
        assert client.hash_corpus(corpus) == [
            alpha_hash_all(e).root_hash for e in corpus
        ]

    def test_upload_raw_bytes(self, client, corpus):
        from repro.store import snapshot_to_bytes

        local = Session()
        local.intern_many(corpus[:10])
        reply = client.push_snapshot(snapshot_to_bytes(local.store))
        assert reply["uploaded_format"] == "repro-store-snapshot-v1"

    def test_bad_snapshot_is_a_client_error(self, client):
        with pytest.raises(ServiceError, match="bad snapshot") as excinfo:
            client.push_snapshot(b"definitely not a snapshot")
        assert excinfo.value.status == 400


class TestShardedServer:
    def test_sharded_store_serves_v2_snapshots(self, corpus, expected):
        with ReproServer(port=0, num_shards=4) as server:
            client = ServiceClient(server.url)
            ids = client.intern_many(corpus)
            data = client.fetch_snapshot()
            store, header = snapshot_from_bytes(data)
            assert header["format"] == "repro-store-snapshot-v2-sharded"
            assert isinstance(store, ShardedExprStore)
            assert store.num_shards == 4
            # Native layout preserves the server's node ids.
            assert store.intern_many(corpus) == ids
            assert store.hash_corpus(corpus) == expected
            # pull_session adopts the sharded store with its config.
            local = client.pull_session()
            assert isinstance(local.store, ShardedExprStore)
            assert local.config.num_shards == 4
            assert local.hash_corpus(corpus) == expected

    def test_entry_bounded_server_intern_stays_clean(self, corpus, expected):
        """A capacity-bounded store evicting mid-batch must not turn the
        intern endpoint into a KeyError/400."""
        with ReproServer(port=0, max_entries=5) as server:
            client = ServiceClient(server.url)
            reply_ids = client.intern_many(corpus)
            assert len(reply_ids) == len(corpus)
            assert client.hash_corpus(corpus) == expected


class TestServerHardening:
    def test_workers_hint_is_clamped(self, client, corpus):
        """A remote client must not be able to fork unbounded workers."""
        from repro.core.cpus import available_cpus

        _hashes, plan = client.hash_corpus(
            corpus, workers=5000, with_plan=True
        )
        assert plan["workers"] <= available_cpus()

    def test_keep_alive_survives_an_unread_error_body(self, server):
        """An error reply sent before the body was read must not leave
        stale bytes on a persistent connection."""
        import http.client
        import json as json_module

        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request(
                "POST",
                "/v1/nope",
                body=b'{"exprs": []}' * 100,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            # The next request on the same client object must get a
            # clean, parseable 200 -- not the leftover body bytes.
            conn.request("GET", "/v1/health")
            follow_up = conn.getresponse()
            assert follow_up.status == 200
            assert json_module.loads(follow_up.read())["ok"] is True
        finally:
            conn.close()


class TestErrorHandling:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_malformed_body_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/v1/hash", b"not json", "application/json"
            )
        assert excinfo.value.status == 400

    def test_unknown_backend_400(self, client, corpus):
        with pytest.raises(ServiceError, match="unknown backend") as excinfo:
            client.hash_corpus(corpus[:2], backend="warp")
        assert excinfo.value.status == 400

    def test_storeless_server_409_on_snapshot(self):
        with ReproServer(port=0, use_store=False) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as excinfo:
                client.fetch_snapshot()
            assert excinfo.value.status == 409
            # hashing still works without a store
            expr = parse("a b")
            assert client.hash_corpus([expr]) == [
                alpha_hash_all(expr).root_hash
            ]


class TestMetricsEndpoint:
    def test_metrics_shape_and_rates(self, server, client, corpus):
        client.intern_many(corpus[:20])
        client.hash_corpus(corpus[:20])
        metrics = client.metrics()
        assert metrics["ok"] is True
        assert metrics["uptime_s"] >= 0
        assert metrics["requests_served"] >= 2
        assert metrics["backend"] == "ours"
        assert metrics["kernel"] in ("vec", "scalar")
        assert metrics["shard_id"] is None and metrics["shard_count"] is None
        store = metrics["store"]
        assert store["entries"] > 0
        assert store["version"] == store["entries"]  # eviction-free store
        assert 0 <= store["intern_hit_rate"] <= 1
        assert store["counters"]["misses"] == store["entries"]

    def test_sharded_store_occupancy(self, corpus):
        with ReproServer(port=0, num_shards=4) as server:
            client = ServiceClient(server.url)
            client.intern_many(corpus[:30])
            store = client.metrics()["store"]
            assert store["num_shards"] == 4
            assert len(store["shard_occupancy"]) == 4
            assert sum(store["shard_occupancy"]) == store["entries"]


class TestClientRetry:
    def test_connection_errors_retried_then_surface(self):
        # No listener on this port: each attempt fails fast; the client
        # must give up after its bounded retries, not hang or loop.
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=0.5, retries=2, backoff=0.01
        )
        started = time.monotonic()
        with pytest.raises(ServiceError):
            client.health()
        assert time.monotonic() - started < 10

    def test_4xx_not_retried(self, server):
        # A 404 is the caller's fault: it surfaces immediately even
        # with retries enabled (only 5xx/connection errors replay).
        client = ServiceClient(server.url, retries=3, backoff=0.01)
        started = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/nope")
        assert excinfo.value.status == 404
        assert time.monotonic() - started < 1

    def test_retry_disabled_with_zero(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5, retries=0)
        with pytest.raises(ServiceError):
            client.health()


class TestCleanShutdown:
    def test_close_is_idempotent(self):
        server = ReproServer(port=0).start()
        ServiceClient(server.url).health()
        server.close()
        server.close()  # second close: no hang, no error
        server.shutdown()  # alias shares the guard

    def test_close_without_serving_does_not_hang(self):
        # shutdown() on a ThreadingHTTPServer whose accept loop never
        # ran would block forever; close() must special-case it.
        server = ReproServer(port=0)
        server.close()

    def test_socket_released_for_rebind(self):
        server = ReproServer(port=0).start()
        port = server.port
        server.close()
        rebound = ReproServer(port=port).start()
        try:
            assert ServiceClient(rebound.url).health()["ok"] is True
        finally:
            rebound.close()
