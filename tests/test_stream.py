"""Tests for streaming rewrite sessions (ISSUE 9).

The differential wall: every streamed edit's root hash must be
bit-identical to a from-scratch ``alpha_hash_all`` of the edited tree,
across flat, LRU-bounded and sharded stores -- plus the eviction
safety that makes that true under pressure (session pins, the
recompute-and-repin fallback), the ``/v1/session`` wire protocol
(TTL expiry, capacity, 409 reopen semantics), the keep-alive client
transport, and the coordinator's sticky session routing.
"""

import random
import socket
import time

import pytest

from repro.api import (
    RemoteSession,
    Session,
    StoreThrashError,
    StreamError,
    StreamSession,
)
from repro.cluster.coordinator import ClusterCoordinator
from repro.core.hashed import alpha_hash_all
from repro.core.incremental import PathError
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.traversal import preorder_with_paths, replace_at
from repro.service import ReproServer, ServiceClient, ServiceError


def build_corpus(n_items, seed=17, size=90):
    rng = random.Random(seed)
    return [
        random_expr(size, rng=rng, p_let=0.15, p_lit=0.1)
        for _ in range(n_items)
    ]


def seeded_edits(stream_exprs, n_edits, seed=23, max_repl=12):
    """A deterministic (item, path, replacement) trace.

    Paths are re-picked against the *current* tree of each item, and
    every replacement is alpha-renamed with a distinct seed so binders
    stay unique within each item (the ``replace`` contract).
    """
    rng = random.Random(seed)
    current = list(stream_exprs)
    for index in range(n_edits):
        item = rng.randrange(len(current))
        paths = [path for path, _node in preorder_with_paths(current[item])]
        path = rng.choice(paths)
        replacement = alpha_rename(
            random_expr(rng.randint(3, max_repl), rng=rng),
            seed=10_000 + index,
        )
        current[item] = replace_at(current[item], path, replacement)
        yield item, path, replacement, current[item]


STORE_CONFIGS = [
    pytest.param({}, id="flat"),
    pytest.param({"max_entries": 60, "memo_limit": 300}, id="lru-bounded"),
    pytest.param({"num_shards": 4}, id="sharded"),
    pytest.param({"num_shards": 4, "max_entries": 48}, id="sharded-bounded"),
]


class TestDifferentialWall:
    @pytest.mark.parametrize("config", STORE_CONFIGS)
    def test_every_edit_matches_from_scratch(self, config):
        corpus = build_corpus(3)
        with Session(**config) as session:
            with session.open_stream(corpus) as stream:
                for item, path, repl, expected_tree in seeded_edits(
                    corpus, n_edits=24
                ):
                    report = stream.edit(item, path, repl)
                    oracle = alpha_hash_all(expected_tree).root_hash
                    assert report.root_hash == oracle
                    assert stream.root_hashes[item] == oracle
                    # The perf receipt: never more work than the corpus.
                    assert report.nodes_rehashed <= stream.corpus_nodes

    def test_storeless_session_streams(self):
        corpus = build_corpus(2, seed=5)
        with Session(use_store=False) as session:
            with session.open_stream(corpus) as stream:
                assert stream.intern_classes is False
                for item, path, repl, expected_tree in seeded_edits(
                    corpus, n_edits=8, seed=6
                ):
                    report = stream.edit(item, path, repl)
                    assert (
                        report.root_hash
                        == alpha_hash_all(expected_tree).root_hash
                    )
                    assert report.class_id is None

    def test_rehash_is_spine_not_corpus(self):
        corpus = build_corpus(1, seed=40, size=4000)
        with Session() as session:
            with session.open_stream(corpus) as stream:
                deep = max(
                    (p for p, _ in preorder_with_paths(corpus[0])), key=len
                )
                repl = alpha_rename(random_expr(4, seed=77), seed=20_001)
                report = stream.edit(0, deep, repl)
                assert report.spine_depth == len(deep)
                # Dirty spine + tiny subtree, nowhere near the corpus.
                assert report.nodes_rehashed <= len(deep) + 4
                assert report.nodes_rehashed < stream.corpus_nodes / 10


class TestEvictionSafety:
    def test_pins_survive_foreign_eviction_pressure(self):
        corpus = build_corpus(2, seed=9, size=60)
        with Session(max_entries=50, memo_limit=200) as session:
            with session.open_stream(corpus) as stream:
                assert session.store.pinned_count >= len(corpus)
                # Foreign traffic on the shared store: enough distinct
                # classes to cycle the LRU bound many times over.
                rng = random.Random(1234)
                for index in range(30):
                    session.intern(
                        alpha_rename(
                            random_expr(20, rng=rng), seed=30_000 + index
                        )
                    )
                for item, expr in enumerate(corpus):
                    node_id = stream.root_ids[item]
                    assert node_id is not None
                    assert node_id in session.store
                    assert session.store.is_pinned(node_id)
            assert session.store.pinned_count == 0  # close unpinned all

    def test_eviction_pressure_fuzz_tiny_lru(self):
        corpus = build_corpus(2, seed=31, size=50)
        with Session(max_entries=12, memo_limit=40) as session:
            with session.open_stream(corpus) as stream:
                for item, path, repl, expected_tree in seeded_edits(
                    corpus, n_edits=60, seed=32, max_repl=8
                ):
                    report = stream.edit(item, path, repl)
                    assert (
                        report.root_hash
                        == alpha_hash_all(expected_tree).root_hash
                    )
                assert stream.edits == 60
            assert session.store.pinned_count == 0

    def test_repin_fallback_recovers_evicted_class(self):
        """Satellite-6 regression guard: a class evicted between intern
        and pin must be recomputed and repinned, never a KeyError."""
        corpus = build_corpus(1, seed=50, size=30)
        with Session() as session:
            with session.open_stream(corpus) as stream:
                expr = alpha_rename(random_expr(6, seed=51), seed=40_000)
                bogus = 10**9  # evicted-by-the-time-we-pin stand-in
                node_id = stream._pin_class(expr, bogus)
                assert node_id != bogus
                assert node_id in session.store
                assert session.store.is_pinned(node_id)
                assert stream.repins == 1

    def test_memo_flush_between_edits_stays_bit_identical(self):
        """Memo entries evicted *between* edits (wholesale flush on a
        memo-bounded store) must fall back to recompute, not raise."""
        corpus = build_corpus(1, seed=60, size=80)
        with Session(memo_limit=64) as session:
            with session.open_stream(corpus) as stream:
                trace = list(seeded_edits(corpus, n_edits=10, seed=61))
                for item, path, repl, expected_tree in trace:
                    # Force memo churn mid-stream.
                    session.store._memo.clear()
                    report = stream.edit(item, path, repl)
                    assert (
                        report.root_hash
                        == alpha_hash_all(expected_tree).root_hash
                    )

    def test_store_thrash_error_after_bounded_retries(self):
        corpus = build_corpus(1, seed=70, size=20)
        with Session() as session:
            with session.open_stream(corpus) as stream:
                original_pin = session.store.pin
                session.store.pin = lambda node_id: (_ for _ in ()).throw(
                    KeyError(node_id)
                )
                try:
                    with pytest.raises(StoreThrashError):
                        stream._pin_class(corpus[0], 1)
                finally:
                    session.store.pin = original_pin


class TestStreamSessionSurface:
    def test_closed_session_refuses_edits(self):
        corpus = build_corpus(1, seed=80, size=20)
        with Session() as session:
            stream = session.open_stream(corpus)
            stream.close()
            with pytest.raises(StreamError):
                stream.edit(0, (), corpus[0])
            stream.close()  # idempotent

    def test_bad_targets(self):
        corpus = build_corpus(1, seed=81, size=20)
        repl = alpha_rename(random_expr(4, seed=82), seed=50_000)
        with Session() as session:
            with session.open_stream(corpus) as stream:
                with pytest.raises(IndexError):
                    stream.edit(5, (), repl)
                with pytest.raises(PathError):
                    stream.edit(0, (9, 9, 9, 9), repl)
                with pytest.raises(TypeError):
                    stream.edit(0, (), "not an expr")

    def test_report_shape_and_sharing(self):
        corpus = build_corpus(2, seed=83, size=40)
        with Session() as session:
            with session.open_stream(corpus) as stream:
                repl = alpha_rename(random_expr(6, seed=84), seed=60_000)
                first = stream.edit(0, (0,), repl)
                # The same class again (alpha-renamed): now shared.
                again = alpha_rename(repl, seed=60_001)
                second = stream.edit(1, (0,), again)
                assert first.edit_hash == second.edit_hash
                assert second.shared is True
                report = stream.report()
                assert report["edits"] == 2
                assert 0 < report["rehash_ratio"] < 1
                assert report["root_hashes"] == stream.root_hashes


@pytest.fixture()
def server():
    with ReproServer(port=0, max_sessions=2, session_ttl=30.0) as live:
        yield live


class TestSessionWireProtocol:
    def test_remote_round_trip_bit_identical(self, server):
        corpus = build_corpus(2, seed=90, size=70)
        remote = RemoteSession(server.url)
        try:
            with remote.open_stream(corpus) as stream:
                assert stream.items == 2
                for item, path, repl, expected_tree in seeded_edits(
                    corpus, n_edits=10, seed=91
                ):
                    reply = stream.edit(item, path, repl)
                    oracle = alpha_hash_all(expected_tree).root_hash
                    assert reply["root_hash"] == oracle
                    assert stream.root_hashes[item] == oracle
                report = stream.report()
                assert report["edits"] == 10
        finally:
            remote.close()

    def test_unknown_session_409(self, server):
        client = ServiceClient(server.url)
        try:
            with pytest.raises(ServiceError) as err:
                client.session_report("deadbeef")
            assert err.value.status == 409
        finally:
            client.close()

    def test_ttl_expiry_409_and_unpin(self, server):
        server.session_ttl = 0.2
        corpus = build_corpus(1, seed=92, size=30)
        remote = RemoteSession(server.url)
        try:
            with remote.open_stream(corpus) as stream:
                assert server.session.store.pinned_count > 0
                time.sleep(0.4)
                repl = alpha_rename(random_expr(4, seed=93), seed=70_000)
                with pytest.raises(ServiceError) as err:
                    stream.edit(0, (), repl)
                assert err.value.status == 409
                # The sweep closed the stream server-side: pins released.
                assert server.session.store.pinned_count == 0
            # __exit__ swallowed the 409 from close(): already gone.
        finally:
            remote.close()

    def test_capacity_429(self, server):
        corpus = build_corpus(1, seed=94, size=20)
        remote = RemoteSession(server.url)
        try:
            s1 = remote.open_stream(corpus)
            s2 = remote.open_stream(corpus)
            with pytest.raises(ServiceError) as err:
                remote.open_stream(corpus)
            assert err.value.status == 429
            s1.close()
            s2.close()
        finally:
            remote.close()

    def test_bad_path_400(self, server):
        corpus = build_corpus(1, seed=95, size=20)
        remote = RemoteSession(server.url)
        try:
            with remote.open_stream(corpus) as stream:
                repl = alpha_rename(random_expr(4, seed=96), seed=80_000)
                with pytest.raises(ServiceError) as err:
                    stream.edit(0, (7, 7, 7, 7), repl)
                assert err.value.status == 400
                with pytest.raises(ServiceError) as err:
                    stream.edit(9, (), repl)
                assert err.value.status == 400
        finally:
            remote.close()

    def test_metrics_sessions_block(self, server):
        corpus = build_corpus(1, seed=97, size=30)
        remote = RemoteSession(server.url)
        try:
            with remote.open_stream(corpus) as stream:
                repl = alpha_rename(random_expr(5, seed=98), seed=90_000)
                stream.edit(0, (0,), repl)
                block = remote.metrics()["sessions"]
                assert block["open"] == 1
                assert block["opened"] == 1
                assert block["edits_served"] == 1
                assert block["pinned_nodes"] == server.session.store.pinned_count
                assert 0 < block["rehash_ratio"] < 1
            block = remote.metrics()["sessions"]
            assert block["open"] == 0
            assert block["closed"] == 1
            # Totals survive the close.
            assert block["edits_served"] == 1
        finally:
            remote.close()


class TestKeepAliveTransport:
    def test_one_connection_many_requests(self, server):
        client = ServiceClient(server.url)
        try:
            for _ in range(8):
                client.health()
            assert client.counters["requests"] == 8
            assert client.counters["connections_opened"] == 1
            assert client.counters["retries"] == 0
        finally:
            client.close()

    def test_stale_keepalive_replays_without_burning_retry(self, server):
        client = ServiceClient(server.url, retries=0)
        try:
            assert client.health()["ok"] is True
            # Emulate a server-side keep-alive timeout: kill the pooled
            # socket under the client so the next send hits a dead
            # connection.  retries=0, so only the free stale-connection
            # replay can make the second call succeed.
            client._local.conn.sock.shutdown(socket.SHUT_RDWR)
            assert client.health()["ok"] is True
            assert client.counters["retries"] == 0
            assert client.counters["failures"] == 0
            assert client.counters["connections_opened"] == 2
        finally:
            client.close()

    def test_error_replies_fail_fast_and_reconnect(self, server):
        client = ServiceClient(server.url, retries=3)
        try:
            with pytest.raises(ServiceError) as err:
                client._json("GET", "/v1/nonesuch")
            assert err.value.status == 404
            assert client.counters["retries"] == 0  # 4xx never retries
            # The server closed that connection (error replies carry
            # Connection: close); the next call transparently reopens.
            assert client.health()["ok"] is True
        finally:
            client.close()


class TestClusterSessions:
    def test_sticky_routing_and_failover_409(self):
        corpus = build_corpus(2, seed=99, size=60)
        n0 = ReproServer(port=0, shard_id=0, shard_count=2).start()
        n1 = ReproServer(port=0, shard_id=1, shard_count=2).start()
        coord = ClusterCoordinator(
            [n0.url, n1.url], port=0, retries=0, down_ttl=0.3, timeout=10
        ).start()
        remote = RemoteSession(coord.url)
        try:
            stream = remote.open_stream(corpus)
            # Shard nodes stream hash-only: no foreign-class 409s.
            assert stream.opened["intern_classes"] is False
            owner_url = stream.opened["node"]
            for item, path, repl, expected_tree in seeded_edits(
                corpus, n_edits=6, seed=100
            ):
                reply = stream.edit(item, path, repl)
                assert (
                    reply["root_hash"]
                    == alpha_hash_all(expected_tree).root_hash
                )
            folded = remote.metrics()["sessions"]
            assert folded["edits_served"] == 6
            assert folded["routed"] == 1

            victim = n0 if owner_url == n0.url else n1
            victim.close()
            repl = alpha_rename(random_expr(4, seed=101), seed=99_000)
            with pytest.raises(ServiceError) as err:
                stream.edit(0, (), repl)
            assert err.value.status == 409
            # Reopen lands on the survivor and streams on.
            stream2 = remote.open_stream(corpus)
            assert stream2.opened["node"] != owner_url
            reply = stream2.edit(0, (), repl)
            assert reply["root_hash"] == alpha_hash_all(repl).root_hash
            stream2.close()
        finally:
            remote.close()
            coord.close()
            n0.close()
            n1.close()
