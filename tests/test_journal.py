"""Tests for the write-ahead journal (ISSUE 8).

The journal's contract: every acknowledged intern batch is a
checksummed delta frame on disk, and any crash -- mid-frame, mid-apply,
mid-checkpoint -- recovers to either the exact pre-crash store or a
verified prefix of it, never a half-applied hybrid.  Differential
tests compare a recovered store's content fingerprint against the
original; corruption that is *not* a crash artefact must fail loudly.
"""

import json
import os
import random

import pytest

from repro.core.combiners import HashCombiners
from repro.gen.random_exprs import random_expr
from repro.store import (
    ExprStore,
    Journal,
    JournalError,
    SnapshotError,
    apply_delta_bytes,
    content_checksum,
    delta_to_bytes,
)
from repro.store.journal import FRAME_MAGIC, _frame_bytes


def corpus(n, seed=31, size=30):
    rng = random.Random(seed)
    return [random_expr(size, rng=rng, p_let=0.2, p_lit=0.2) for _ in range(n)]


def make_store():
    return ExprStore(HashCombiners(bits=64, seed=7))


def journaled_store(tmp_path, batches=4, per_batch=10):
    """A store built in batches, each batch journaled as one frame."""
    directory = str(tmp_path / "wal")
    journal = Journal(directory, fsync=False)
    store = make_store()
    items = corpus(batches * per_batch)
    for batch in range(batches):
        for expr in items[batch * per_batch : (batch + 1) * per_batch]:
            store.intern(expr)
        journal.append_delta(store)
    journal.close()
    return store, directory


class TestAppendReplay:
    def test_replay_rebuilds_exact_store(self, tmp_path):
        store, directory = journaled_store(tmp_path)
        recovered = make_store()
        report = Journal(directory, fsync=False).replay(recovered)
        assert report["applied"] == len(store)
        assert report["truncated_bytes"] == 0
        assert recovered.version == store.version
        assert content_checksum(recovered) == content_checksum(store)

    def test_replay_is_idempotent(self, tmp_path):
        store, directory = journaled_store(tmp_path)
        recovered = make_store()
        journal = Journal(directory, fsync=False)
        journal.replay(recovered)
        again = journal.replay(recovered)
        assert again["applied"] == 0
        assert again["skipped_frames"] == again["frames"]
        assert content_checksum(recovered) == content_checksum(store)

    def test_empty_window_appends_nothing(self, tmp_path):
        journal = Journal(str(tmp_path / "wal"), fsync=False)
        store = make_store()
        assert journal.append_delta(store) is None
        store.intern(corpus(1)[0])
        assert journal.append_delta(store) is not None
        assert journal.append_delta(store) is None  # window already covered

    def test_segment_rotation_and_order(self, tmp_path):
        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        for expr in corpus(12):
            store.intern(expr)
            journal.append_delta(store)
        assert len(journal.segments()) >= 3  # 1-byte cap: every frame rotates
        recovered = make_store()
        Journal(directory, fsync=False).replay(recovered)
        assert content_checksum(recovered) == content_checksum(store)


class TestCrashArtefacts:
    def test_torn_tail_truncates_to_last_good_frame(self, tmp_path):
        store, directory = journaled_store(tmp_path)
        last = Journal(directory, fsync=False).segments()[-1]
        size = os.path.getsize(last)
        with open(last, "r+b") as handle:
            handle.truncate(size - 7)  # crash mid-frame-write
        recovered = make_store()
        report = Journal(directory, fsync=False).replay(recovered)
        assert report["truncated_bytes"] > 0
        # The torn frame is gone; everything before it survived intact.
        assert 0 < recovered.version < store.version
        # Differential: recovered == the intact frame prefix re-applied
        # to a fresh store.
        replayed = make_store()
        for _path, payload in Journal(directory, fsync=False).iter_frames():
            apply_delta_bytes(replayed, payload)
        assert content_checksum(recovered) == content_checksum(replayed)

    def test_torn_tail_then_append_then_recover(self, tmp_path):
        """Crash, truncate on boot, keep writing, recover again."""
        store, directory = journaled_store(tmp_path)
        last = Journal(directory, fsync=False).segments()[-1]
        with open(last, "r+b") as handle:
            handle.truncate(os.path.getsize(last) - 3)
        node = make_store()
        journal = Journal(directory, fsync=False)
        journal.replay(node)
        for expr in corpus(10, seed=91):
            node.intern(expr)
        journal.append_delta(node)
        journal.close()
        recovered = make_store()
        Journal(directory, fsync=False).replay(recovered)
        assert content_checksum(recovered) == content_checksum(node)

    def test_fresh_journal_never_appends_to_unverified_tail(self, tmp_path):
        """Without replay(), appends open a NEW segment: a torn tail in
        the previous one must stay a *tail* until recovery truncates it."""
        store, directory = journaled_store(tmp_path, batches=2)
        before = Journal(directory, fsync=False).segments()
        journal = Journal(directory, fsync=False)  # no replay()
        store.intern(corpus(1, seed=55)[0])
        journal.append_delta(store, since=store.version - 1)
        after = journal.segments()
        journal.close()
        assert len(after) == len(before) + 1

    def test_duplicated_frame_skips_cleanly(self, tmp_path):
        store, directory = journaled_store(tmp_path, batches=2)
        journal = Journal(directory, fsync=False)
        frames = [payload for _path, payload in journal.iter_frames()]
        # Re-append the first frame at the end: version goes backwards.
        journal.append_bytes(frames[0])
        journal.close()
        recovered = make_store()
        report = Journal(directory, fsync=False).replay(recovered)
        assert report["skipped_frames"] == 1
        assert content_checksum(recovered) == content_checksum(store)


class TestNonTailCorruption:
    def test_non_final_segment_damage_fails_loudly(self, tmp_path):
        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        for expr in corpus(6):
            store.intern(expr)
            journal.append_delta(store)
        journal.close()
        first = Journal(directory, fsync=False).segments()[0]
        data = bytearray(open(first, "rb").read())
        data[len(FRAME_MAGIC) + 8 + 32 + 5] ^= 0xFF  # payload byte of frame 0
        open(first, "wb").write(bytes(data))
        # Damage in a non-final segment is not a crash artefact.
        with pytest.raises(JournalError, match="corrupt frame"):
            Journal(directory, fsync=False).replay(make_store())

    def test_reordered_segment_fails_loudly(self, tmp_path):
        _store, directory = journaled_store(tmp_path, batches=3, per_batch=4)
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        # Force multiple segments by rewriting the journal 1-frame-per-segment.
        frames = [payload for _path, payload in journal.iter_frames()]
        for path in journal.segments():
            os.remove(path)
        for payload in frames:
            journal.append_bytes(payload)
        journal.close()
        paths = Journal(directory, fsync=False).segments()
        assert len(paths) >= 3
        # Drop a middle segment: the sequence gap must be detected.
        os.remove(paths[1])
        with pytest.raises(JournalError, match="sequence gap"):
            Journal(directory, fsync=False).replay(make_store())

    def test_swapped_segment_contents_fail_as_version_gap(self, tmp_path):
        _store, directory = journaled_store(tmp_path, batches=3, per_batch=4)
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        frames = [payload for _path, payload in journal.iter_frames()]
        for path in journal.segments():
            os.remove(path)
        # Segments renumbered contiguously but holding reordered
        # history: the delta version chain must refuse the gap.
        for payload in [frames[1], frames[0]] + frames[2:]:
            journal.append_bytes(payload)
        journal.close()
        with pytest.raises(SnapshotError, match="delta starts at version"):
            Journal(directory, fsync=False).replay(make_store())


class TestCrashMidApply:
    """apply_delta_bytes is all-or-nothing per frame: a frame that
    cannot fully apply must leave the store untouched."""

    def _delta_with_bad_record(self, mutate):
        source = make_store()
        for expr in corpus(8, seed=77):
            source.intern(expr)
        data = delta_to_bytes(source, 0)
        header_line, body = data.split(b"\n", 1)
        header = json.loads(header_line)
        lines = body.rstrip(b"\n").split(b"\n")
        records = [json.loads(line) for line in lines]
        mutate(records)
        new_body = b"\n".join(
            json.dumps(r, separators=(",", ":")).encode() for r in records
        )
        # Recompute the body checksum so the outer envelope stays valid
        # and the *record validation* layer is what must catch it.
        import hashlib

        header["checksum"] = "sha256:" + hashlib.sha256(new_body).hexdigest()
        return (
            json.dumps(header, separators=(",", ":")).encode()
            + b"\n"
            + new_body
            + b"\n"
        )

    def test_malformed_record_leaves_store_untouched(self):
        data = self._delta_with_bad_record(
            lambda records: records[len(records) // 2].pop("h")
        )
        target = make_store()
        for expr in corpus(3, seed=5):
            target.intern(expr)
        before = content_checksum(target)
        version = target.version
        with pytest.raises(SnapshotError):
            apply_delta_bytes(target, data)
        assert content_checksum(target) == before
        assert target.version == version

    def test_conflicting_record_leaves_store_untouched(self):
        """A record disagreeing with an entry the store already holds
        (split-brain artefact) is rejected before any mutation."""
        source = make_store()
        items = corpus(6, seed=7)
        for expr in items:
            source.intern(expr)
        data = delta_to_bytes(source, 0)
        header_line, body = data.split(b"\n", 1)
        records = [json.loads(line) for line in body.rstrip(b"\n").split(b"\n")]
        # Target already holds the same classes; corrupt one record's
        # kind so it conflicts with the existing entry.
        target = make_store()
        for expr in items:
            target.intern(expr)
        victim = records[len(records) // 2]
        victim["k"] = victim["k"] + "_x"
        import hashlib

        new_body = b"\n".join(
            json.dumps(r, separators=(",", ":")).encode() for r in records
        )
        header = json.loads(header_line)
        header["checksum"] = "sha256:" + hashlib.sha256(new_body).hexdigest()
        data = (
            json.dumps(header, separators=(",", ":")).encode()
            + b"\n"
            + new_body
            + b"\n"
        )
        before = content_checksum(target)
        with pytest.raises(SnapshotError):
            apply_delta_bytes(target, data)
        assert content_checksum(target) == before


class TestCheckpointGC:
    def test_checkpoint_covers_and_gcs_segments(self, tmp_path):
        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        for expr in corpus(10):
            store.intern(expr)
            journal.append_delta(store)
        segments_before = len(journal.segments())
        report = journal.checkpoint(store)
        assert journal.load_checkpoint_bytes() is not None
        # Everything but the open segment is covered and removed.
        assert len(report["removed"]) == segments_before - 1
        journal.close()

    def test_recovery_from_checkpoint_plus_tail(self, tmp_path):
        from repro.api import Session

        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        items = corpus(12, seed=3)
        for expr in items[:8]:
            store.intern(expr)
            journal.append_delta(store)
        journal.checkpoint(store)
        for expr in items[8:]:
            store.intern(expr)
            journal.append_delta(store)
        journal.close()
        # Boot path: seed from the checkpoint, replay the tail.
        recovery = Journal(directory, fsync=False)
        session = Session.from_snapshot_bytes(recovery.load_checkpoint_bytes())
        report = recovery.replay(session.store)
        assert report["applied"] > 0
        assert session.store.version == store.version
        assert content_checksum(session.store) == content_checksum(store)
        session.close()

    def test_gc_never_removes_uncovered_segments(self, tmp_path):
        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        for expr in corpus(6):
            store.intern(expr)
            journal.append_delta(store)
        # Covered only up to an early version: later segments survive.
        report = journal.gc(covered_version=1)
        journal.close()
        recovered = make_store()
        Journal(directory, fsync=False).replay(recovered)
        assert recovered.version == store.version

    def test_concurrent_appends_and_checkpoint_gc_stay_consistent(
        self, tmp_path
    ):
        """Appends (with segment rotation) race checkpoint writes and
        their GC on purpose: the journal's internal mutex must keep the
        segment layout settled, and replay must still rebuild the exact
        store."""
        import threading

        directory = str(tmp_path / "wal")
        journal = Journal(directory, max_segment_bytes=1, fsync=False)
        store = make_store()
        # Plays the service lock: serializes appends and snapshot
        # encodes, exactly like ReproServer does -- checkpoint *writes*
        # deliberately run outside it.
        lock = threading.Lock()
        stop = threading.Event()
        failures = []

        def checkpointer():
            try:
                while not stop.is_set():
                    with lock:
                        data = journal.encode_checkpoint(store)
                        version = store.version
                    journal.write_checkpoint(data, version)
            except Exception as exc:  # surfaces in the main thread
                failures.append(exc)

        thread = threading.Thread(target=checkpointer)
        thread.start()
        try:
            for expr in corpus(40, seed=5):
                with lock:
                    store.intern(expr)
                    journal.append_delta(store)
        finally:
            stop.set()
            thread.join()
        journal.close()
        assert not failures, failures

        from repro.api import Session

        recovery = Journal(directory, fsync=False)
        checkpoint_bytes = recovery.load_checkpoint_bytes()
        assert checkpoint_bytes is not None
        session = Session.from_snapshot_bytes(checkpoint_bytes)
        recovery.replay(session.store)
        assert session.store.version == store.version
        assert content_checksum(session.store) == content_checksum(store)
        session.close()


class TestStaleCheckpointFlusher:
    def test_stale_flusher_never_overwrites_newer_checkpoint(self, tmp_path):
        """The lost-update interleaving: flusher A swaps out checkpoint
        vN and stalls; flusher B swaps a later vM, writes it, and GC
        drops the segments vM covers; A wakes up.  A's older snapshot
        must be skipped, not ``os.replace``'d over B's -- recovery
        would otherwise start from vN with the frames for (N, M]
        already deleted."""
        from repro.api import Session
        from repro.service.server import ReproServer

        directory = str(tmp_path / "wal")
        server = ReproServer(port=0, journal=directory, checkpoint_every=1)
        try:
            store = server.session.store
            items = corpus(8, seed=11)
            with server.lock:
                for expr in items[:4]:
                    store.intern(expr)
                server.journal_commit()
                # Flusher A: swaps the pending checkpoint out, then
                # stalls before writing it.
                stale, server._pending_checkpoint = (
                    server._pending_checkpoint,
                    None,
                )
            assert stale is not None
            # Flusher B: a later batch comes due and is fully flushed.
            with server.lock:
                for expr in items[4:]:
                    store.intern(expr)
                server.journal_commit()
            assert server.flush_checkpoint() is not None
            newer = server.journal.load_checkpoint_bytes()
            # Flusher A wakes up and tries to write its older snapshot.
            with server.lock:
                server._pending_checkpoint = stale
            assert server.flush_checkpoint() is None
            assert server.journal.load_checkpoint_bytes() == newer
            # Recovery from what is on disk reproduces the full store.
            recovery = Journal(directory, fsync=False)
            session = Session.from_snapshot_bytes(
                recovery.load_checkpoint_bytes()
            )
            recovery.replay(session.store)
            assert content_checksum(session.store) == content_checksum(store)
            session.close()
        finally:
            server.close()


class TestContentChecksum:
    def test_checksum_ignores_recency_and_stats(self):
        a = make_store()
        b = make_store()
        items = corpus(10, seed=41)
        for expr in items:
            a.intern(expr)
        for expr in items:
            b.intern(expr)
        for expr in items:  # extra touches: stats/LRU differ, content equal
            b.intern(expr)
        assert content_checksum(a) == content_checksum(b)

    def test_checksum_sees_content(self):
        a = make_store()
        b = make_store()
        items = corpus(10, seed=43)
        for expr in items:
            a.intern(expr)
        for expr in items[:-1]:
            b.intern(expr)
        assert content_checksum(a) != content_checksum(b)
