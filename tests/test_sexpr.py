"""Tests for the structured serialisation format."""

import pytest
from hypothesis import given

from repro.lang.expr import App, Lam, Lit, Var, syntactic_eq
from repro.lang.parser import parse
from repro.lang.sexpr import SexprError, dumps, from_sexpr, loads, to_sexpr

from strategies import exprs


class TestEncoding:
    def test_var(self):
        assert to_sexpr(Var("x")) == ["v", "x"]

    def test_lit_tags(self):
        assert to_sexpr(Lit(1)) == ["c", "int", 1]
        assert to_sexpr(Lit(1.5)) == ["c", "float", 1.5]
        assert to_sexpr(Lit(True)) == ["c", "bool", True]
        assert to_sexpr(Lit("s")) == ["c", "str", "s"]

    def test_nested(self):
        e = parse(r"\x. x 1")
        assert to_sexpr(e) == ["l", "x", ["a", ["v", "x"], ["c", "int", 1]]]

    def test_let(self):
        e = parse("let a = 1 in a")
        assert to_sexpr(e) == ["t", "a", ["c", "int", 1], ["v", "a"]]


class TestRoundTrip:
    @given(exprs(max_size=80))
    def test_sexpr_roundtrip(self, e):
        assert syntactic_eq(from_sexpr(to_sexpr(e)), e)

    @given(exprs(max_size=80))
    def test_json_roundtrip(self, e):
        assert syntactic_eq(loads(dumps(e)), e)

    def test_bool_int_distinction_survives_json(self):
        assert loads(dumps(Lit(True))).value is True
        assert loads(dumps(Lit(1))).value == 1
        assert not isinstance(loads(dumps(Lit(1))).value, bool)

    def test_float_integral_value_survives_json(self):
        out = loads(dumps(Lit(2.0)))
        assert isinstance(out.value, float) and out.value == 2.0

    def test_deep_chain(self):
        e = Var("x")
        for i in range(20_000):
            e = Lam(f"v{i}", e)
        assert syntactic_eq(loads(dumps(e)), e)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            42,
            [],
            ["z", "x"],
            ["v"],
            ["v", 3],
            ["c", "int"],
            ["c", "complex", 1],
            ["c", "int", "not-an-int"],
            ["c", "int", True],
            ["l", 3, ["v", "x"]],
            ["a", ["v", "x"]],
            ["t", "x", ["v", "y"]],
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SexprError):
            from_sexpr(bad)


class TestFlatFormatErrors:
    def test_not_a_document(self):
        with pytest.raises(SexprError):
            loads('{"post": []}')
        with pytest.raises(SexprError):
            loads('[1,2]')

    def test_unbalanced_stream(self):
        with pytest.raises(SexprError):
            loads('{"format":"repro-expr-v1","post":[["v","x"],["v","y"]]}')

    def test_too_few_operands(self):
        with pytest.raises(SexprError):
            loads('{"format":"repro-expr-v1","post":[["v","x"],["a"]]}')
