"""Unit tests for the CEK evaluator."""

import pytest

from repro.lang.evaluator import (
    Closure,
    EvalError,
    EvalFuelExhausted,
    PrimValue,
    evaluate,
)
from repro.lang.expr import App, Lam, Let, Lit, Var
from repro.lang.parser import parse


class TestArithmetic:
    def test_add(self):
        assert evaluate(parse("2 + 3")) == 5

    def test_precedence(self):
        assert evaluate(parse("2 + 3 * 4")) == 14

    def test_sub_div(self):
        assert evaluate(parse("10 - 4")) == 6
        assert evaluate(parse("9 / 2")) == 4.5

    def test_min_max_neg(self):
        assert evaluate(parse("min 3 5")) == 3
        assert evaluate(parse("max 3 5")) == 5
        assert evaluate(parse("neg 4")) == -4

    def test_floats(self):
        assert evaluate(parse("1.5 * 2.0")) == 3.0

    def test_comparisons(self):
        assert evaluate(parse("lt 1 2")) is True
        assert evaluate(parse("le 2 2")) is True
        assert evaluate(parse("eq 2 3")) is False

    def test_ite(self):
        assert evaluate(parse("ite (lt 1 2) 10 20")) == 10
        assert evaluate(parse("ite (lt 2 1) 10 20")) == 20

    def test_transcendentals(self):
        assert evaluate(parse("exp 0")) == 1.0
        assert evaluate(parse("log 1")) == 0.0
        assert evaluate(parse("tanh 0")) == 0.0
        assert evaluate(parse("relu (neg 3)")) == 0.0
        assert evaluate(parse("relu 3")) == 3


class TestBinding:
    def test_let(self):
        assert evaluate(parse("let w = 3 + 4 in w * w")) == 49

    def test_nested_lets(self):
        assert evaluate(parse("let a = 1 in let b = a + 1 in b * b")) == 4

    def test_let_shadowing(self):
        assert evaluate(parse("let x = 1 in let x = x + 1 in x")) == 2

    def test_lambda_application(self):
        assert evaluate(parse(r"(\x. x + 1) 41")) == 42

    def test_higher_order(self):
        assert evaluate(parse(r"(\f. f (f 2)) (\x. x * x)")) == 16

    def test_closure_captures_environment(self):
        assert evaluate(parse(r"(let a = 10 in \x. x + a) 5")) == 15

    def test_lexical_not_dynamic_scope(self):
        # the closure's `a` is the defining a=10, not the caller's a=99
        text = r"let a = 10 in let f = \x. x + a in let a = 99 in f 0"
        assert evaluate(parse(text)) == 10

    def test_shadowed_lambda(self):
        assert evaluate(parse(r"(\x. (\x. x) 2) 1")) == 2

    def test_currying(self):
        assert evaluate(parse(r"(\x. \y. x - y) 10 4")) == 6


class TestValuesAndEnv:
    def test_env_supplies_free_vars(self):
        assert evaluate(parse("a * b"), env={"a": 6, "b": 7}) == 42

    def test_lambda_value(self):
        value = evaluate(parse(r"\x. x"))
        assert isinstance(value, Closure)

    def test_partial_prim(self):
        value = evaluate(parse("add 1"))
        assert isinstance(value, PrimValue)
        assert value.applied_to(2) == 3

    def test_string_value(self):
        assert evaluate(parse('"s"')) == "s"


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(EvalError, match="unbound"):
            evaluate(parse("nosuchvar"))

    def test_apply_non_function(self):
        with pytest.raises(EvalError, match="non-function"):
            evaluate(parse("3 4"))

    def test_division_by_zero(self):
        with pytest.raises(EvalError, match="zero"):
            evaluate(parse("1 / 0"))

    def test_type_error_in_prim(self):
        with pytest.raises(EvalError, match="number"):
            evaluate(parse(r"1 + (\x. x)"))

    def test_ite_requires_bool(self):
        with pytest.raises(EvalError, match="bool"):
            evaluate(parse("ite 1 2 3"))

    def test_fuel_exhaustion_on_divergence(self):
        omega = parse(r"(\x. x x) (\x. x x)")
        with pytest.raises(EvalFuelExhausted):
            evaluate(omega, fuel=10_000)


class TestMachineDepth:
    def test_deep_let_chain(self):
        bindings = "let x0 = 1 in "
        e = Var("x0")
        for i in range(20_000):
            e = Let(f"y{i}", Lit(1), e)
        e = Let("x0", Lit(7), e)
        assert evaluate(e) == 7

    def test_deep_application_chain(self):
        # id (id (... (id 5)))
        e = Lit(5)
        identity = parse(r"\x. x")
        for _ in range(5_000):
            e = App(parse(r"\x. x"), e)
        assert evaluate(e, fuel=10_000_000) == 5
