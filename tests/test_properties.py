"""Cross-cutting property suite: the paper's theorems as hypothesis tests.

Each class corresponds to one formal statement:

* Section 4.2's iff (summary equality == alpha-equivalence) -- via hashes;
* Section 4.7's invertibility (rebuild);
* Section 5.2's O(1) XOR maintenance (vs recompute-from-scratch);
* Section 6.3's incrementality (vs batch);
* Theorem 6.7's collision bound (empirically, at small widths);
* Lemma 6.1's operation bound.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import ALGORITHMS
from repro.core.combiners import HashCombiners
from repro.core.equivalence import group_by_hash
from repro.core.esummary import (
    rebuild_naive,
    rebuild_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.core.hashed import alpha_hash_all, alpha_hash_root
from repro.core.incremental import IncrementalHasher
from repro.core.linear_lazy import alpha_hash_all_lazy
from repro.core.varmap import MapOpStats
from repro.gen.random_exprs import alpha_rename
from repro.lang.alpha import alpha_equivalent
from repro.lang.debruijn import canonical_key
from repro.lang.expr import Lit
from repro.lang.traversal import preorder, preorder_with_paths, replace_at

from strategies import exprs


class TestAlphaInvariance:
    """h(e) == h(rename(e)) for every correct algorithm, at every node."""

    @given(exprs(max_size=60), st.integers(0, 100))
    def test_every_correct_algorithm(self, e, seed):
        renamed = alpha_rename(e, seed=seed)
        for name, algorithm in ALGORITHMS.items():
            if not algorithm.true_negatives:
                continue
            assert (
                algorithm(e).root_hash == algorithm(renamed).root_hash
            ), name


class TestDiscrimination:
    """Hash equality == alpha-equivalence (whp at 64 bits)."""

    @given(exprs(max_size=45))
    def test_subexpression_grouping_is_exact(self, e):
        hashes = alpha_hash_all(e)
        nodes = list(preorder(e))
        by_hash: dict[int, list] = {}
        for node in nodes:
            by_hash.setdefault(hashes.hash_of(node), []).append(node)
        for group in by_hash.values():
            keys = {canonical_key(node) for node in group}
            assert len(keys) == 1
        # and distinct groups have distinct keys
        rep_keys = [canonical_key(g[0]) for g in by_hash.values()]
        assert len(rep_keys) == len(set(rep_keys))


class TestInvertibility:
    @given(exprs(max_size=60))
    def test_rebuild_naive(self, e):
        assert alpha_equivalent(rebuild_naive(summarise_naive(e)), e)

    @given(exprs(max_size=60))
    def test_rebuild_tagged(self, e):
        assert alpha_equivalent(rebuild_tagged(summarise_tagged(e)), e)


class TestVariantAgreement:
    """All three correct formulations induce the same partition."""

    @given(exprs(max_size=45))
    def test_tagged_lazy_locally_nameless_agree(self, e):
        partitions = []
        for fn in (
            lambda x: alpha_hash_all(x),
            lambda x: alpha_hash_all_lazy(x),
            lambda x: ALGORITHMS["locally_nameless"](x, None),
        ):
            groups = group_by_hash(fn(e))
            partitions.append(
                sorted(sorted(p for p, _ in g) for g in groups.values())
            )
        assert partitions[0] == partitions[1] == partitions[2]


class TestIncrementality:
    @given(exprs(max_size=50), st.integers(0, 10**6), st.integers(0, 99))
    def test_replace_equals_batch(self, e, pick, value):
        hasher = IncrementalHasher(e)
        paths = [p for p, _ in preorder_with_paths(e)]
        path = paths[pick % len(paths)]
        hasher.replace(path, Lit(value))
        expected = alpha_hash_all(replace_at(e, path, Lit(value)))
        assert hasher.root_hash == expected.root_hash


class TestLemmaBounds:
    @given(exprs(max_size=120))
    def test_lemma_6_1_and_6_2(self, e):
        stats = MapOpStats()
        alpha_hash_all(e, stats=stats)
        n = e.size
        assert stats.merge_entries <= n * math.log2(max(n, 2))
        assert stats.singleton + stats.remove <= n


class TestCollisionBehaviour:
    @settings(max_examples=25)
    @given(exprs(max_size=30), exprs(max_size=30), st.integers(0, 50))
    def test_no_reliable_cross_seed_collision(self, e1, e2, base_seed):
        """Appendix B's strong claim: non-equivalent expressions cannot
        collide across independently seeded combiner families."""
        if alpha_equivalent(e1, e2):
            return
        collisions = 0
        for offset in range(3):
            combiners = HashCombiners(bits=32, seed=base_seed * 7 + offset)
            if alpha_hash_root(e1, combiners) == alpha_hash_root(e2, combiners):
                collisions += 1
        assert collisions < 3  # colliding on ALL seeds would break the claim

    @settings(max_examples=20)
    @given(exprs(max_size=40))
    def test_equivalent_collide_at_any_width(self, e):
        renamed = alpha_rename(e)
        for bits in (16, 64, 128):
            combiners = HashCombiners(bits=bits, seed=11)
            assert alpha_hash_root(e, combiners) == alpha_hash_root(
                renamed, combiners
            )
