#!/usr/bin/env python
"""Common subexpression elimination modulo alpha-equivalence.

Reproduces every CSE transformation from the paper's introduction, then
runs the pass over the synthetic MNIST convolution workload and checks
(with the built-in evaluator) that a closed program's value is
unchanged.

Run:  python examples/cse_demo.py
"""

from repro import cse, evaluate, parse, pretty, uniquify_binders
from repro.workloads.mnist_cnn import build_mnist_cnn

INTRO_EXAMPLES = [
    # (description, source)
    ("repeated open term", "(a + (v + 7)) * (v + 7)"),
    (
        "alpha-equivalent let blocks",
        "(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)",
    ),
    ("alpha-equivalent lambdas", r"foo (\x. x + 7) (\y. y + 7)"),
    (
        "equivalent lambdas under different binders (Section 2.4)",
        r"\t. foo (\x. x + t) (\y. \x2. x2 + t)",
    ),
]


def main() -> None:
    for label, source in INTRO_EXAMPLES:
        expr = uniquify_binders(parse(source))
        result = cse(expr)
        print(f"{label}:")
        print(f"  before ({result.original_size} nodes): {pretty(expr)}")
        print(f"  after  ({result.final_size} nodes): {pretty(result.expr)}")
        print()

    # Semantics check on a closed program.
    program = parse(
        "let k = 3 in (k * (k + 1)) + (k * (k + 1)) + (k * (k + 1))"
    )
    before = evaluate(program)
    result = cse(program)
    after = evaluate(result.expr)
    print("closed program value before/after CSE:", before, "/", after)
    assert before == after

    # A realistic workload: the 840-node convolution kernel.
    cnn = build_mnist_cnn()
    result = cse(cnn, min_size=4)
    print(
        f"\nMNIST CNN workload: {result.original_size} -> "
        f"{result.final_size} nodes in {len(result.rounds)} CSE rounds"
    )
    for round_info in result.rounds[:5]:
        print(
            f"  bound {round_info.occurrence_count} occurrences of a "
            f"{round_info.representative_size}-node term as "
            f"{round_info.binder} (saved {round_info.saving} nodes)"
        )


if __name__ == "__main__":
    main()
