#!/usr/bin/env python
"""Appendix B in miniature: measuring hash collisions at a small width.

Shrinks the hash space to 12 bits so collisions become observable in a
few seconds, then compares

* random expression pairs   (collide at about the perfect-hash floor),
* adversarial pairs (App. B.1, collide more as size grows), and
* the Theorem 6.7 upper bound (never exceeded).

Run:  python examples/collision_demo.py        (a few seconds)
Use ``python -m repro fig4 --scale paper`` for the full-size experiment.
"""

from repro.analysis.collisions import (
    collision_experiment,
    perfect_hash_expectation,
    theorem_bound,
)

BITS = 12
TRIALS = 250
SIZES = (64, 128, 256)


def main() -> None:
    print(f"hash width b={BITS}; {TRIALS} pairs per cell")
    print(f"perfect-hash floor: {perfect_hash_expectation(BITS):.1f} per 2^16 trials\n")
    header = f"{'n':>5}  {'random/2^16':>12}  {'adversarial/2^16':>17}  {'Thm 6.7 bound':>14}"
    print(header)
    print("-" * len(header))
    for n in SIZES:
        random_result = collision_experiment("random", n, TRIALS, bits=BITS, seed=1)
        adversarial = collision_experiment("adversarial", n, TRIALS, bits=BITS, seed=1)
        bound = theorem_bound(n, BITS)
        print(
            f"{n:>5}  {random_result.per_2_16:>12.1f}  "
            f"{adversarial.per_2_16:>17.1f}  {bound:>14.0f}"
        )
        assert random_result.per_2_16 <= bound
        assert adversarial.per_2_16 <= bound
    print(
        "\nshape check: random stays near the floor, adversarial grows "
        "with n, both below the bound."
    )


if __name__ == "__main__":
    main()
