#!/usr/bin/env python
"""Quickstart: hash every subexpression modulo alpha, find the classes.

Runs the paper's introductory example: the two let-bound terms in

    (a + (let x = exp(z) in x+7)) * (let y = exp(z) in y+7)

are alpha-equivalent, and a CSE pass should spot that.  This script
shows the three core API calls a downstream user needs:

1. ``uniquify_binders``  -- the Section 2.2 preprocessing,
2. ``alpha_hash_all``    -- one O(n log n) pass annotating every node,
3. ``equivalence_classes`` -- group the repeated subexpressions.

Run:  python examples/quickstart.py
"""

from repro import (
    alpha_hash_all,
    equivalence_classes,
    parse,
    pretty,
    uniquify_binders,
)


def main() -> None:
    source = "(a + (let x = exp z in x + 7)) * (let y = exp z in y + 7)"
    expr = uniquify_binders(parse(source))
    print("program:          ", pretty(expr))
    print("nodes:            ", expr.size)

    hashes = alpha_hash_all(expr)
    print("root alpha-hash:  ", hex(hashes.root_hash))

    # An alpha-renamed copy hashes identically ...
    renamed = uniquify_binders(expr)
    assert alpha_hash_all(renamed).root_hash == hashes.root_hash
    print("alpha-renamed copy hashes identically: True")

    # ... and the repeated subexpressions fall out as classes.
    print("\nrepeated alpha-equivalence classes (>= 2 nodes):")
    for cls in equivalence_classes(expr, min_size=2, verify=True):
        print(
            f"  {cls.count} occurrences x {cls.node_size:2d} nodes:  "
            f"{pretty(cls.representative, max_len=60)}"
        )


if __name__ == "__main__":
    main()
