#!/usr/bin/env python
"""ML preprocessing: turn an AST into a graph with equality links.

The paper's third motivation: "turning an AST into a graph with
equality links" as input features for machine-learning models over
code.  This demo runs on the synthetic BERT workload, reports graph
statistics, and shows how the alpha-equality links expose the repeated
blocks that loop unrolling creates.

Run:  python examples/ml_graph_demo.py
"""

from repro.apps.ml_graph import ast_to_graph, graph_stats
from repro.apps.sharing import share_alpha, share_syntactic
from repro.workloads.bert import build_bert


def main() -> None:
    expr = build_bert(2)
    print(f"BERT-2 workload: {expr.size} nodes, depth {expr.depth}")

    graph = ast_to_graph(expr, min_class_size=4)
    stats = graph_stats(graph)
    print(f"graph: {stats.nodes} nodes")
    print(f"  child edges:       {stats.child_edges}")
    print(f"  alpha-equal links: {stats.equality_edges} across {stats.classes} classes")

    # the biggest linked classes
    by_class: dict[int, int] = {}
    for _, _, data in graph.edges(data=True):
        if data.get("kind") == "alpha_equal":
            by_class[data["class_id"]] = by_class.get(data["class_id"], 0) + 1
    top = sorted(by_class.items(), key=lambda kv: -kv[1])[:5]
    for class_id, edges in top:
        members = [
            p for p, d in graph.nodes(data=True) if d.get("class_id") == class_id
        ]
        size = graph.nodes[members[0]]["size"]
        print(
            f"  class {class_id}: {edges + 1} occurrences of a {size}-node block"
        )

    # structure sharing: how much memory alpha-aware sharing saves
    syntactic = share_syntactic(expr)
    alpha = share_alpha(expr)
    print(
        f"\nstructure sharing: {expr.size} tree nodes -> "
        f"{syntactic.unique_nodes} DAG nodes syntactically, "
        f"{alpha.unique_nodes} modulo alpha"
    )


if __name__ == "__main__":
    main()
