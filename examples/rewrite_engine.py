#!/usr/bin/env python
"""A miniature rewrite engine: zipper navigation + live alpha-hashes.

The scenario the paper's incrementality section targets: "in typical
compilers the program is subjected to thousands of rewrites, each of
which transforms the program locally.  Ideally, we would like an
incremental hashing algorithm, so that we can continuously monitor
sharing."

This demo runs a constant-folding rewriter over a synthetic program:

* a :class:`~repro.lang.zipper.Zipper` finds each foldable redex
  (``lit + lit``, ``lit * lit``) and computes its replacement;
* an :class:`~repro.core.incremental.IncrementalHasher` keeps every
  subexpression's alpha-hash up to date, so after each rewrite the
  engine can *re-query the equivalence classes without re-hashing*;
* at the end, the result is checked against a from-scratch hash and the
  evaluator.

Run:  python examples/rewrite_engine.py
"""

from repro import alpha_hash_all, evaluate, parse, pretty
from repro.core.equivalence import equivalence_classes
from repro.core.incremental import IncrementalHasher
from repro.lang.expr import App, Lit, Var
from repro.lang.zipper import Zipper

PROGRAM = """
let a = (2 + 3) * (1 + 1) in
let b = (2 + 3) * (4 - 2) in
(a + b) * ((2 + 3) * (1 + 1))
"""


def _foldable(node) -> bool:
    """Is this ``prim lit lit`` with an arithmetic prim?"""
    return (
        isinstance(node, App)
        and isinstance(node.arg, Lit)
        and isinstance(node.fn, App)
        and isinstance(node.fn.arg, Lit)
        and isinstance(node.fn.fn, Var)
        and node.fn.fn.name in ("add", "sub", "mul")
    )


def _fold(node) -> Lit:
    op = node.fn.fn.name
    a, b = node.fn.arg.value, node.arg.value
    return Lit({"add": a + b, "sub": a - b, "mul": a * b}[op])


def main() -> None:
    expr = parse(PROGRAM)
    print("before:", pretty(expr))
    print("value: ", evaluate(expr))

    hasher = IncrementalHasher(expr)
    rewrites = 0
    while True:
        z = Zipper.from_expr(hasher.expr).find(_foldable)
        if z is None:
            break
        replacement = _fold(z.focus)
        stats = hasher.replace(z.path, replacement)
        rewrites += 1
        print(
            f"  rewrite {rewrites}: {pretty(z.focus)} -> {pretty(replacement)} "
            f"(touched {stats.touched_nodes}/{hasher.expr.size} nodes)"
        )

    print("after: ", pretty(hasher.expr))
    print("value: ", evaluate(hasher.expr))
    assert evaluate(hasher.expr) == evaluate(expr)

    # live hashes stayed consistent with a from-scratch pass
    assert hasher.root_hash == alpha_hash_all(hasher.expr).root_hash
    print("incremental hashes == from-scratch: True")

    # and the classes are queryable without re-hashing
    classes = equivalence_classes(hasher.expr, hashes=hasher.hashes(), min_size=1)
    for cls in classes:
        print(
            f"  {cls.count} x {pretty(cls.representative, max_len=40)}"
        )


if __name__ == "__main__":
    main()
