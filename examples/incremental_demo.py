#!/usr/bin/env python
"""Incremental re-hashing across rewrites (Section 6.3).

A compiler applies thousands of local rewrites; compositionality lets
the alpha-hashes be maintained instead of recomputed.  This demo builds
a 64k-node balanced expression, applies a small rewrite, and compares

* the nodes touched by the incremental update vs the tree size, and
* the wall-clock of an incremental update vs a from-scratch re-hash,

then demonstrates semantic rewriting: replacing a subexpression with an
alpha-equivalent one leaves every hash unchanged.

Run:  python examples/incremental_demo.py
"""

import time

from repro import IncrementalHasher, alpha_hash_all, parse
from repro.gen.random_exprs import random_balanced
from repro.lang.traversal import preorder_with_paths


def main() -> None:
    n = 65_536
    expr = random_balanced(n, seed=7)
    hasher = IncrementalHasher(expr)
    print(f"expression: {n} nodes, depth {expr.depth}")

    # pick a deep, small subtree to rewrite
    path = next(
        p
        for p, node in preorder_with_paths(expr)
        if node.size <= 5 and len(p) >= 8
    )
    stats = hasher.replace(path, parse("q1 + q2"))
    print(
        f"rewrite at depth {len(path)}: touched "
        f"{stats.touched_nodes} nodes ({stats.touched_nodes / n:.3%} of the tree), "
        f"{stats.unchanged_nodes} untouched"
    )

    # wall-clock comparison
    start = time.perf_counter()
    hasher.replace(path, parse("q1 + q3"))
    incremental = time.perf_counter() - start
    start = time.perf_counter()
    alpha_hash_all(hasher.expr)
    batch = time.perf_counter() - start
    print(
        f"incremental update: {incremental * 1e3:.2f} ms;  "
        f"batch re-hash: {batch * 1e3:.1f} ms;  "
        f"speedup {batch / incremental:.0f}x"
    )

    # alpha-equivalent rewrites are hash-neutral
    small = parse(r"foo (\x. x + 7) (\y. y + 7)")
    inc = IncrementalHasher(small)
    before = inc.root_hash
    inc.replace((1,), parse(r"\fresh. fresh + 7"))
    print(
        "replacing a lambda by an alpha-equivalent copy keeps the root "
        f"hash: {inc.root_hash == before}"
    )


if __name__ == "__main__":
    main()
