from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Hashing modulo alpha-equivalence (PLDI 2021) - full reproduction",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    # the core is stdlib-only; numpy unlocks the vectorized arena
    # kernel (engine="arena-vec" / the "auto" fast path)
    extras_require={"vec": ["numpy"]},
    entry_points={"console_scripts": ["repro-alpha-hash=repro.cli:main"]},
)
