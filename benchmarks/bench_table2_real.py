"""Table 2: the realistic ML workloads (MNIST CNN, GMM, BERT-12).

One benchmark per (algorithm, workload) cell.  The Locally Nameless /
BERT-12 cell takes ~10s per call in pure Python, so it only runs at
``REPRO_BENCH_SCALE=small`` or above (the harness
``python -m repro table2`` always includes it).
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.evalharness.table2 import PAPER_TABLE2_MS
from repro.workloads import TABLE2_WORKLOADS

from conftest import run_bench

_PROFILE = current_profile()
_EXPRS = {name: builder() for name, (builder, _) in TABLE2_WORKLOADS.items()}


@pytest.mark.parametrize("workload", list(TABLE2_WORKLOADS))
@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_table2(benchmark, name, workload):
    if (
        name == "locally_nameless"
        and workload == "BERT 12"
        and _PROFILE.name == "ci"
    ):
        pytest.skip("LN on BERT-12 takes ~10s/call; run with REPRO_BENCH_SCALE=small")
    expr = _EXPRS[workload]
    algorithm = ALGORITHMS[name]
    benchmark.extra_info["n"] = expr.size
    benchmark.extra_info["paper_ms"] = PAPER_TABLE2_MS.get(name, {}).get(workload)
    heavy = name == "locally_nameless" or workload == "BERT 12"
    result = run_bench(benchmark, algorithm, expr, heavy=heavy)
    assert result.root_hash is not None
