"""Chaos smoke gate: seeded faults + SIGKILL against a replicated cluster.

CI entry point for the fault-tolerance tier::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --fault-seed 4242

Real processes: two ``repro serve`` shard primaries (shard 0 journaled
and replicated by a ``--follow`` node), one ``repro cluster serve``
coordinator fronting them, and a seeded
:class:`repro.testing.FaultyProxy` between the client and the
coordinator injecting connection refusals, latency and mid-body cuts.
Mid-workload, the schedule SIGKILLs shard 0's primary.  Hard gates:

1. **zero client-visible failures** -- every batch interns despite the
   network faults and the kill (reads fail over to the in-sync
   replica, writes resume after promotion, client retries absorb the
   bounded 503 window);
2. **bit-identity** -- every hash returned equals the serial
   ``alpha_hash_all`` oracle;
3. **conservation** -- folded cluster stats equal per-shard sums, and
   the merged snapshot's class set equals a flat local session's;
4. **journal recovery** -- the killed primary restarted with
   ``--journal`` recovers to the exact pre-kill store (content
   checksum captured at the sync barrier), and an in-driver replay
   measures replay throughput;
5. survivors exit 0 on SIGTERM.

The fault schedule is pure data expanded from ``--fault-seed``; a
failing run's log names the seed, so it replays locally byte for byte.
Writes the chaos cell to ``BENCH_PR8.json`` (failover latency, replay
throughput, zero-loss booleans).  Exit 0 = all gates hold.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import time


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args], env=dict(os.environ)
    )


def build_corpus(n_items: int, seed: int = 42):
    from repro.gen.random_exprs import random_expr

    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.25:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(40, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


def wait_for_health(client, attempts: int, delay: float) -> dict:
    from repro.service import ServiceError

    last = None
    for _ in range(attempts):
        try:
            return client.health()
        except ServiceError as exc:
            last = exc
            time.sleep(delay)
    raise SystemExit(f"server never became healthy: {last}")


def wait_until(predicate, timeout: float, what: str, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise SystemExit(f"timed out waiting for {what}")


def stop_cleanly(name: str, proc, failures: int) -> int:
    if proc.poll() is not None:
        print(
            f"FAIL: {name} died early with exit {proc.returncode}",
            file=sys.stderr,
        )
        return failures + 1
    proc.send_signal(signal.SIGTERM)
    try:
        returncode = proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        print(f"FAIL: {name} still alive 15s after SIGTERM", file=sys.stderr)
        return failures + 1
    if returncode != 0:
        print(
            f"FAIL: {name} exited {returncode} on SIGTERM (want 0)",
            file=sys.stderr,
        )
        return failures + 1
    print(f"chaos_smoke: {name} SIGTERM clean shutdown ok (exit 0)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=480)
    parser.add_argument("--batch", type=int, default=40)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--fault-seed", type=int, default=4242,
        help="expands into the deterministic fault schedule",
    )
    parser.add_argument(
        "--kill-after-batch", type=int, default=None,
        help="SIGKILL shard 0's primary after this batch "
        "(default: the middle batch)",
    )
    parser.add_argument("--json-out", default="BENCH_PR8.json")
    parser.add_argument("--health-attempts", type=int, default=50)
    parser.add_argument("--health-delay", type=float, default=0.2)
    args = parser.parse_args(argv)

    import tempfile

    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    shard_count = 2
    ports = {name: free_port() for name in ("p0", "p1", "r0", "coord")}
    urls = {name: f"http://127.0.0.1:{port}" for name, port in ports.items()}

    p0 = spawn([
        "serve", "--host", "127.0.0.1", "--port", str(ports["p0"]),
        "--shard-id", "0", "--shard-count", str(shard_count),
        "--journal", journal_dir,
    ])
    p1 = spawn([
        "serve", "--host", "127.0.0.1", "--port", str(ports["p1"]),
        "--shard-id", "1", "--shard-count", str(shard_count),
    ])
    r0 = spawn([
        "serve", "--host", "127.0.0.1", "--port", str(ports["r0"]),
        "--shard-id", "0", "--shard-count", str(shard_count),
        "--follow", urls["p0"], "--poll-interval", "0.05",
    ])
    coordinator = spawn([
        "cluster", "serve", "--host", "127.0.0.1",
        "--port", str(ports["coord"]),
        "--shard", urls["p0"], "--shard", urls["p1"],
        "--replica", f"0={urls['r0']}",
        "--retries", "1", "--backoff", "0.05",
        "--down-ttl", "0.5", "--probe-interval", "0.1",
        "--budget", "60",
    ])
    procs = [("shard-0", p0), ("shard-1", p1), ("replica-0", r0),
             ("coordinator", coordinator)]
    try:
        return run_gates(args, urls, journal_dir, dict(procs))
    except BaseException:
        for _name, proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        raise
    finally:
        import shutil

        shutil.rmtree(journal_dir, ignore_errors=True)


def run_gates(args, urls, journal_dir, procs) -> int:
    from repro.api import Session
    from repro.core.hashed import alpha_hash_all
    from repro.lang.sexpr import to_wire
    from repro.service import ServiceClient
    from repro.store import Journal, content_checksum, snapshot_from_bytes
    from repro.testing import FaultSchedule, FaultyProxy, ProcessReaper

    failures = 0
    batches = (args.items + args.batch - 1) // args.batch
    kill_batch = (
        args.kill_after_batch
        if args.kill_after_batch is not None
        else batches // 2
    )
    schedule = FaultSchedule.from_seed(
        args.fault_seed,
        connections=batches * 3,
        kill_target="shard-0",
        kill_after_batch=kill_batch,
    )
    print(
        f"chaos_smoke: seed {args.fault_seed} -> {len(schedule.events)} "
        f"fault(s), kill shard-0 after batch {kill_batch}/{batches}"
    )

    for name in ("p0", "p1", "r0"):
        wait_for_health(
            ServiceClient(urls[name], timeout=30.0),
            args.health_attempts, args.health_delay,
        )
    coordinator_client = ServiceClient(urls["coord"], timeout=300.0, retries=0)
    wait_for_health(
        coordinator_client, args.health_attempts, args.health_delay
    )
    print("chaos_smoke: all processes healthy")

    reaper = ProcessReaper(schedule)
    reaper.register("shard-0", procs["shard-0"])
    proxy = FaultyProxy("127.0.0.1", int(urls["coord"].rsplit(":", 1)[1]),
                        schedule).start()
    # The workload client speaks through the fault proxy: bounded
    # retries under a total deadline are what must absorb every fault.
    client = ServiceClient(
        proxy.url, timeout=300.0, retries=10, backoff=0.1, deadline=120.0
    )

    corpus = build_corpus(args.items, seed=args.seed)
    oracle = [alpha_hash_all(e).root_hash for e in corpus]
    docs = [to_wire(e) for e in corpus]
    p0_client = ServiceClient(urls["p0"], timeout=30.0)
    r0_client = ServiceClient(urls["r0"], timeout=30.0)

    got_hashes = []
    barrier_checksum = None
    kill_at = None
    failover_latency_s = None
    for batch_index in range(batches):
        lo, hi = batch_index * args.batch, (batch_index + 1) * args.batch
        reply = client.intern_wire(docs[lo:hi])
        got_hashes.extend(reply["hashes"])
        if kill_at is not None and failover_latency_s is None:
            failover_latency_s = time.monotonic() - kill_at
        if schedule.kill_after_batch(batch_index) is not None:
            # Sync barrier: the driver is serial, so once the replica's
            # version catches the primary's there are no acked writes
            # the replica lacks -- the kill is then loss-free by
            # construction, and the journal must prove it on restart.
            primary_version = p0_client.health()["version"]
            wait_until(
                lambda: r0_client.health()["version"] >= primary_version,
                timeout=30, what="replica to reach the primary's version",
            )
            barrier_checksum = p0_client.health(checksum=True)[
                "content_checksum"
            ]
            replica_checksum = r0_client.health(checksum=True)[
                "content_checksum"
            ]
            if replica_checksum != barrier_checksum:
                print("FAIL: replica checksum != primary at barrier",
                      file=sys.stderr)
                failures += 1
            event = reaper.after_batch(batch_index)
            kill_at = time.monotonic()
            print(
                f"chaos_smoke: {event.arg} SIGKILLed after batch "
                f"{batch_index} (store checksum captured)"
            )

    # Gate 1: zero client-visible failures.
    fired = [f.kind for f in proxy.faults_fired]
    if client.counters["failures"] != 0:
        print(
            f"FAIL: client saw {client.counters['failures']} failed "
            f"request(s): {client.counters}",
            file=sys.stderr,
        )
        failures += 1
    print(
        f"chaos_smoke: zero-loss ok -- {batches} batches, faults fired "
        f"{fired or 'none'}, kill absorbed, counters {client.counters}"
    )
    if failover_latency_s is not None:
        print(
            f"chaos_smoke: first post-kill batch landed in "
            f"{failover_latency_s:.2f}s (down-ttl 0.5s + promotion)"
        )

    # Gate 2: bit-identity against the serial oracle.
    if got_hashes != oracle:
        bad = sum(1 for a, b in zip(got_hashes, oracle) if a != b)
        print(f"FAIL: {bad}/{len(oracle)} hashes diverge from the oracle",
              file=sys.stderr)
        failures += 1
    else:
        print("chaos_smoke: bit-identity vs serial oracle ok")

    # Gate 3: conservation across the fold and the snapshot union.
    stats = coordinator_client.stats()
    if stats["entries"] != sum(s["entries"] for s in stats["shards"]):
        print("FAIL: folded entries != per-shard sum", file=sys.stderr)
        failures += 1
    merged, _header = snapshot_from_bytes(coordinator_client.fetch_snapshot())
    with Session() as flat:
        flat.intern_many(corpus)
        flat_hashes = {e.hash for e in flat.store.entries()}
    if {e.hash for e in merged.entries()} != flat_hashes:
        print("FAIL: merged snapshot union != flat store classes",
              file=sys.stderr)
        failures += 1
    else:
        print(
            f"chaos_smoke: conservation ok ({stats['entries']} entries, "
            f"union == flat {len(flat_hashes)} classes, shard 0 served "
            f"by its promoted replica)"
        )
    domains = coordinator_client.metrics()["failure_domains"]
    if domains["promotions"] < 1:
        print(f"FAIL: expected a promotion, telemetry: {domains}",
              file=sys.stderr)
        failures += 1

    # Gate 4: journal recovery of the killed node, exact to the barrier.
    # In-driver replay mirrors the serve boot path (default session
    # shape) and gives exact replay-throughput numbers.
    replay_session = Session()
    t0 = time.perf_counter()
    replay_report = Journal(journal_dir).replay(replay_session.store)
    replay_s = time.perf_counter() - t0
    replay_checksum = content_checksum(replay_session.store)
    replay_session.close()
    if replay_checksum != barrier_checksum:
        print(
            f"FAIL: journal replay checksum {replay_checksum[:24]}... != "
            f"pre-kill {str(barrier_checksum)[:24]}...",
            file=sys.stderr,
        )
        failures += 1
    restarted = spawn([
        "serve", "--host", "127.0.0.1",
        "--port", str(int(urls["p0"].rsplit(":", 1)[1])),
        "--shard-id", "0", "--shard-count", "2",
        "--journal", journal_dir,
    ])
    procs["shard-0-restarted"] = restarted
    recovered_health = wait_for_health(
        ServiceClient(urls["p0"], timeout=30.0, retries=0),
        args.health_attempts, args.health_delay,
    )
    recovered_checksum = ServiceClient(urls["p0"], timeout=60.0).health(
        checksum=True
    )["content_checksum"]
    if recovered_checksum != barrier_checksum:
        print("FAIL: restarted node's store != pre-kill store",
              file=sys.stderr)
        failures += 1
    else:
        print(
            f"chaos_smoke: journal recovery ok -- replay "
            f"{replay_report['applied']} entries in {replay_s:.3f}s "
            f"({replay_report['applied'] / max(replay_s, 1e-9):,.0f} "
            f"entries/s), restarted node checksum matches pre-kill "
            f"(version {recovered_health['version']})"
        )

    proxy.close()
    failures = stop_cleanly("coordinator", procs["coordinator"], failures)
    failures = stop_cleanly("shard-1", procs["shard-1"], failures)
    failures = stop_cleanly("replica-0", procs["replica-0"], failures)
    failures = stop_cleanly("shard-0 (restarted)", restarted, failures)

    record = {
        "pr": 8,
        "bench": "chaos_smoke",
        "fault_seed": args.fault_seed,
        "items": args.items,
        "batches": batches,
        "kill_after_batch": kill_batch,
        "faults_fired": fired,
        "client_counters": client.counters,
        "failover_latency_s": (
            round(failover_latency_s, 4)
            if failover_latency_s is not None
            else None
        ),
        "replay_entries": replay_report["applied"],
        "replay_s": round(replay_s, 4),
        "replay_entries_per_s": round(
            replay_report["applied"] / max(replay_s, 1e-9), 1
        ),
        "promotions": domains["promotions"],
        "breaker_opens": domains["breaker_opens"],
        "gates": {
            "zero_client_failures": client.counters["failures"] == 0,
            "bit_identical": got_hashes == oracle,
            "stats_conserved": stats["entries"]
            == sum(s["entries"] for s in stats["shards"]),
            "journal_recovery_exact": recovered_checksum == barrier_checksum,
        },
    }
    with open(args.json_out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"chaos_smoke: wrote {args.json_out}")

    if failures:
        print(f"chaos_smoke: {failures} gate(s) FAILED", file=sys.stderr)
        return 1
    print("chaos_smoke: all gates ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
