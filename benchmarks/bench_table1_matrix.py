"""Table 1 benchmark: all four algorithms on one mid-size input.

Regenerates the Table 1 cost ordering (Structural < De Bruijn < Ours <<
Locally Nameless) on a fixed balanced expression, and attaches the
claimed/observed correctness flags as benchmark metadata.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.gen.random_exprs import random_balanced

from conftest import run_bench

_SIZE = 4096
_EXPR = random_balanced(_SIZE, seed=11)


@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_table1_algorithm(benchmark, name):
    algorithm = ALGORITHMS[name]
    benchmark.extra_info["paper_complexity"] = algorithm.paper_complexity
    benchmark.extra_info["true_positives"] = algorithm.true_positives
    benchmark.extra_info["true_negatives"] = algorithm.true_negatives
    benchmark.extra_info["n"] = _SIZE
    result = run_bench(benchmark, algorithm, _EXPR, heavy=(name == 'locally_nameless'))
    assert result.root_hash is not None
