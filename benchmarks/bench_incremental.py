"""Section 6.3: incremental re-hash vs batch re-hash after a rewrite.

Benchmarks the incremental update at each profile size and the batch
re-hash at the same size; their ratio is the paper's incrementality
claim (O(h^2 + h f) path work vs O(n log n) from scratch).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.hashed import alpha_hash_all
from repro.core.incremental import IncrementalHasher
from repro.evalharness.config import current_profile
from repro.gen.random_exprs import random_balanced
from repro.lang.expr import Lit
from repro.lang.traversal import preorder_with_paths

from conftest import run_bench

_PROFILE = current_profile()
_SIZES = _PROFILE.incremental_sizes


def _small_path(expr, seed):
    rng = random.Random(seed)
    candidates = [
        path
        for path, node in preorder_with_paths(expr)
        if node.size <= 9 and len(path) >= 1
    ]
    return rng.choice(candidates)


@pytest.mark.parametrize("size", _SIZES)
def test_incremental_replace(benchmark, size):
    expr = random_balanced(size, seed=31 ^ size)
    hasher = IncrementalHasher(expr)
    path = _small_path(expr, seed=size)
    values = itertools.count()

    def rewrite():
        hasher.replace(path, Lit(next(values)))

    benchmark.extra_info["n"] = size
    stats = hasher.replace(path, Lit(-1))
    benchmark.extra_info["touched_nodes"] = stats.touched_nodes
    benchmark.extra_info["touched_fraction"] = stats.touched_nodes / size
    benchmark.pedantic(rewrite, rounds=5, iterations=1, warmup_rounds=1)
    assert hasher.root_hash == alpha_hash_all(hasher.expr).root_hash


@pytest.mark.parametrize("size", _SIZES)
def test_batch_rehash_reference(benchmark, size):
    expr = random_balanced(size, seed=31 ^ size)
    benchmark.extra_info["n"] = size
    result = run_bench(benchmark, alpha_hash_all, expr, heavy=size >= 16384)
    assert result.root_hash is not None
