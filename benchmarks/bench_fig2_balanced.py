"""Figure 2 (left): hashing time vs size on balanced random expressions.

One benchmark per (algorithm, size) cell of the sweep.  The paper's
claim: Ours stays log-linear, a constant factor above the incorrect
Structural/De Bruijn baselines, while Locally Nameless pays an extra
log-ish factor even on balanced inputs.  Slope assertions live in
``tests/test_complexity_props.py``; this file is wall-clock only.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.gen.random_exprs import random_balanced

from conftest import run_bench

_PROFILE = current_profile()
_SIZES = tuple(n for n in _PROFILE.fig2_sizes if n >= 256)
_EXPRS = {n: random_balanced(n, seed=21 ^ n) for n in _SIZES}


@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_fig2_balanced(benchmark, name, size):
    if name == "locally_nameless" and size > _PROFILE.fig2_ln_max_balanced:
        pytest.skip("locally nameless capped at this scale profile")
    algorithm = ALGORITHMS[name]
    benchmark.extra_info["family"] = "balanced"
    benchmark.extra_info["n"] = size
    heavy = size >= 16384 or (name == 'locally_nameless' and size >= 2048)
    result = run_bench(benchmark, algorithm, _EXPRS[size], heavy=heavy)
    assert result.root_hash is not None
