"""Lemma 6.1/6.2: map-operation counts while summarising.

Benchmarks the instrumented summariser and records the operation counts
(the quantity the lemmas bound by O(n log n)) as metadata; asserts the
bound with the lemma's constant C = 1 on every run.
"""

from __future__ import annotations

import math

import pytest

from repro.core.combiners import default_combiners
from repro.core.hashed import alpha_hash_all
from repro.core.varmap import MapOpStats
from repro.evalharness.config import current_profile
from repro.gen.random_exprs import random_expr

_PROFILE = current_profile()
_SIZES = _PROFILE.opcount_sizes


@pytest.mark.parametrize("shape", ("balanced", "unbalanced"))
@pytest.mark.parametrize("size", _SIZES)
def test_opcounts(benchmark, shape, size):
    expr = random_expr(size, seed=41 ^ size, shape=shape)
    combiners = default_combiners()

    def run():
        stats = MapOpStats()
        alpha_hash_all(expr, combiners, stats=stats)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = size * math.log2(size) + size  # Lemma 6.1 merges + Lemma 6.2 leaves
    benchmark.extra_info["n"] = size
    benchmark.extra_info["map_ops"] = stats.total
    benchmark.extra_info["ops_per_node"] = stats.total / size
    assert stats.total <= bound
