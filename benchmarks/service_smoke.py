"""Service smoke gate: a live ``repro serve`` must be bit-identical.

Self-managed (the gate owns the server process, preferred in CI)::

    PYTHONPATH=src python benchmarks/service_smoke.py --spawn --items 1000

or against an already-started server::

    python -m repro serve --port 8655 &
    PYTHONPATH=src python benchmarks/service_smoke.py \
        --url http://127.0.0.1:8655 --items 1000

The gate:

1. waits for ``/v1/health`` (bounded retries);
2. generates a mixed corpus of ``--items`` expressions;
3. hashes it through the HTTP client and **hard-fails on any bit** of
   divergence from the local path (``alpha_hash_all`` and a local
   ``Session``);
4. interns the corpus remotely, downloads the server snapshot, and
   checks the restored store serves the same hashes with the same entry
   count (stats conservation);
5. uploads a disjoint local store and checks the merge grew the server
   by exactly the new classes;
6. with ``--spawn``: SIGTERMs the server and requires a clean exit 0
   within a bounded wait -- no leaked listeners, ever.

Exit code 0 = all gates hold; 1 = divergence (with a diff summary).
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import socket
import subprocess
import sys
import time


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(port: int, extra_args=()) -> "subprocess.Popen":
    """Start ``repro serve`` as a child with this interpreter/env."""
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            *extra_args,
        ],
        env=dict(os.environ),
    )


def build_corpus(n_items: int, seed: int = 42):
    from repro.gen.random_exprs import random_expr

    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.25:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(40, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


def wait_for_health(client, attempts: int, delay: float) -> dict:
    from repro.service import ServiceError

    last = None
    for _ in range(attempts):
        try:
            return client.health()
        except ServiceError as exc:
            last = exc
            time.sleep(delay)
    raise SystemExit(f"server never became healthy: {last}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8655")
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="start a repro serve child on a free port and SIGTERM it "
        "at the end, gating on a clean exit 0 (ignores --url)",
    )
    parser.add_argument("--items", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--health-attempts", type=int, default=50)
    parser.add_argument("--health-delay", type=float, default=0.2)
    args = parser.parse_args(argv)

    child = None
    if args.spawn:
        port = free_port()
        child = spawn_server(port)
        args.url = f"http://127.0.0.1:{port}"
        print(f"service_smoke: spawned repro serve pid={child.pid} on {args.url}")

    try:
        return run_gates(args, child)
    except BaseException:
        # A gate blew up (not just failed): don't leak the child.
        if child is not None and child.poll() is None:
            child.kill()
            child.wait(timeout=10)
        raise


def run_gates(args, child) -> int:
    from repro.api import Session
    from repro.core.hashed import alpha_hash_all
    from repro.service import ServiceClient
    from repro.store import snapshot_from_bytes

    client = ServiceClient(args.url, timeout=300.0)
    health = wait_for_health(client, args.health_attempts, args.health_delay)
    print(f"service_smoke: server healthy {health}")

    corpus = build_corpus(args.items, seed=args.seed)
    total_nodes = sum(e.size for e in corpus)
    print(f"service_smoke: corpus {len(corpus)} items, {total_nodes} nodes")

    t0 = time.perf_counter()
    remote = client.hash_corpus(corpus)
    remote_s = time.perf_counter() - t0
    reference = [alpha_hash_all(e).root_hash for e in corpus]
    with Session() as session:
        local = session.hash_corpus(corpus)

    failures = 0
    if remote != reference:
        bad = sum(1 for a, b in zip(remote, reference) if a != b)
        print(
            f"FAIL: remote hashes diverge from alpha_hash_all on "
            f"{bad}/{len(corpus)} items",
            file=sys.stderr,
        )
        failures += 1
    if remote != local:
        print("FAIL: remote hashes diverge from the local Session path",
              file=sys.stderr)
        failures += 1
    print(f"service_smoke: remote hash bit-identity ok ({remote_s:.2f}s)")

    # Snapshot download: the warm server store must serve the corpus.
    client.intern_many(corpus)
    entries_remote = client.stats()["entries"]
    store, header = snapshot_from_bytes(client.fetch_snapshot())
    if len(store) != entries_remote:
        print(
            f"FAIL: snapshot holds {len(store)} entries, server reports "
            f"{entries_remote}",
            file=sys.stderr,
        )
        failures += 1
    if store.hash_corpus(corpus) != reference:
        print("FAIL: downloaded snapshot diverges from the corpus hashes",
              file=sys.stderr)
        failures += 1
    print(
        f"service_smoke: snapshot download ok "
        f"({entries_remote} entries, format {header['format']})"
    )

    # Snapshot upload: merging a disjoint local store grows the server
    # by exactly the new classes (conservation).
    disjoint = build_corpus(50, seed=args.seed + 1)
    local_session = Session()
    local_session.intern_many(disjoint)
    reply = client.push_snapshot(local_session)
    entries_after = client.stats()["entries"]
    union = Session()
    union.intern_many(corpus)
    union.intern_many(disjoint)
    if entries_after != len(union.store):
        print(
            f"FAIL: merged server holds {entries_after} entries, local "
            f"union holds {len(union.store)}",
            file=sys.stderr,
        )
        failures += 1
    print(
        f"service_smoke: snapshot upload/merge ok "
        f"(+{reply['merged_classes']} classes -> {entries_after} entries)"
    )

    # Clean shutdown: SIGTERM must produce exit 0 within a bounded
    # wait -- a hung or non-zero exit means a leaked listener in CI.
    if child is not None:
        child.send_signal(signal.SIGTERM)
        try:
            returncode = child.wait(timeout=15)
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait(timeout=10)
            print("FAIL: server still alive 15s after SIGTERM",
                  file=sys.stderr)
            failures += 1
        else:
            if returncode != 0:
                print(
                    f"FAIL: server exited {returncode} on SIGTERM (want 0)",
                    file=sys.stderr,
                )
                failures += 1
            else:
                print("service_smoke: SIGTERM clean shutdown ok (exit 0)")

    if failures:
        print(f"service_smoke: {failures} gate(s) FAILED", file=sys.stderr)
        return 1
    print("service_smoke: all gates ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
