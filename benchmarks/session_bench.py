"""Streaming-session latency lab: the dirty-spine perf receipt.

CI / release entry point for the PR-9 gate::

    PYTHONPATH=src python benchmarks/session_bench.py --json-out BENCH_PR9.json
    PYTHONPATH=src python benchmarks/session_bench.py --smoke   # CI-sized

Replays a seeded rewrite trace against a :class:`repro.api.StreamSession`
over a ~100k-node corpus (deep balanced items, so every edit has spine
depth >= 12) and records per-edit latency (p50 / p90 / p99) plus
rehashed-nodes-per-edit.  The baseline is what the batch API would pay
per edit: a from-scratch ``alpha_hash_all`` of the whole corpus.

Hard gates (exit 1 on failure):

1. **bit_identical** -- every edit's root hash equals a from-scratch
   ``alpha_hash_all`` of the shadow-rewritten item (always enforced,
   smoke or full);
2. **depth_floor** -- mean spine depth of the trace >= 12 (the edits
   are deep enough for the claim to mean anything);
3. **speedup_10x** -- mean per-edit latency at least 10x faster than
   one full-corpus rehash.  Enforced on full-size runs; on ``--smoke``
   corpora below the floor the gate is *skipped, not failed* -- small
   corpora make the fixed per-edit overhead dominate, so the ratio
   measures the harness, not the algorithm.  Skips are annotated in
   the JSON (``speedup_gate.enforced`` / ``.reason``), the same
   honesty rule as ``cpu_bound`` cells in ``run_bench.py``.

The committed ``BENCH_PR9.json`` is a full-size run.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time

FULL_GATE_MIN_NODES = 50_000
SPEEDUP_FLOOR = 10.0
DEPTH_FLOOR = 12.0


def build_corpus(n_items: int, item_size: int, seed: int):
    from repro.gen.random_exprs import random_expr

    rng = random.Random(seed)
    return [
        random_expr(item_size, rng=rng, shape="balanced", p_let=0.1, p_lit=0.1)
        for _ in range(n_items)
    ]


def deep_paths(expr, min_depth: int):
    from repro.lang.traversal import preorder_with_paths

    paths = [p for p, _node in preorder_with_paths(expr) if len(p) >= min_depth]
    if paths:
        return paths
    # Fall back to the deepest decile so tiny smoke items still edit
    # their deepest spines.
    every = sorted((p for p, _node in preorder_with_paths(expr)), key=len)
    return every[-max(1, len(every) // 10):]


def percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run(args) -> dict:
    from repro.api import Session
    from repro.core.hashed import alpha_hash_all
    from repro.gen.random_exprs import alpha_rename, random_expr
    from repro.lang.traversal import replace_at

    corpus = build_corpus(args.items, args.item_size, args.seed)
    corpus_nodes = sum(item.size for item in corpus)
    print(
        f"corpus: {args.items} items x {args.item_size} nodes "
        f"= {corpus_nodes} nodes"
    )

    # Baseline: one full-corpus from-scratch rehash (what the batch API
    # pays per edit), repeated to steady the clock.
    baseline_runs = []
    for _ in range(args.baseline_reps):
        started = time.perf_counter()
        for item in corpus:
            alpha_hash_all(item)
        baseline_runs.append(time.perf_counter() - started)
    baseline_s = statistics.fmean(baseline_runs)
    print(f"baseline full-corpus rehash: {baseline_s * 1e3:.1f} ms")

    rng = random.Random(args.seed + 1)
    shadow = list(corpus)
    latencies = []
    rehashed = []
    spine_depths = []
    bit_identical = True
    mismatches = 0

    session = Session()
    stream = session.open_stream(corpus)
    try:
        for index in range(args.edits):
            item = rng.randrange(len(shadow))
            path = rng.choice(deep_paths(shadow[item], args.min_depth))
            replacement = alpha_rename(
                random_expr(rng.randint(4, 16), rng=rng),
                seed=500_000 + index,
            )
            started = time.perf_counter()
            report = stream.edit(item, path, replacement)
            latencies.append(time.perf_counter() - started)
            rehashed.append(report.nodes_rehashed)
            spine_depths.append(report.spine_depth)

            # The differential oracle, every edit: shadow-rewrite the
            # item and hash it from scratch (outside the timed region).
            shadow[item] = replace_at(shadow[item], path, replacement)
            oracle = alpha_hash_all(shadow[item]).root_hash
            if report.root_hash != oracle:
                bit_identical = False
                mismatches += 1
        totals = stream.report()
    finally:
        stream.close()
        session.close()

    ordered = sorted(latencies)
    mean_edit_s = statistics.fmean(latencies)
    p50 = percentile(ordered, 0.50)
    p90 = percentile(ordered, 0.90)
    p99 = percentile(ordered, 0.99)
    mean_depth = statistics.fmean(spine_depths)
    mean_rehashed = statistics.fmean(rehashed)
    speedup = baseline_s / mean_edit_s if mean_edit_s else float("inf")

    enforce_speedup = corpus_nodes >= FULL_GATE_MIN_NODES
    speedup_gate = {
        "floor": SPEEDUP_FLOOR,
        "measured": round(speedup, 2),
        "enforced": enforce_speedup,
    }
    if not enforce_speedup:
        speedup_gate["reason"] = (
            f"smoke corpus ({corpus_nodes} nodes < {FULL_GATE_MIN_NODES}): "
            "fixed per-edit overhead dominates; ratio measures the "
            "harness, not the algorithm"
        )

    gates = {
        "bit_identical": bit_identical,
        "depth_floor": mean_depth >= DEPTH_FLOOR,
        "speedup_10x": (speedup >= SPEEDUP_FLOOR) if enforce_speedup else True,
    }

    result = {
        "bench": "session_bench",
        "pr": 9,
        "smoke": bool(args.smoke),
        "items": args.items,
        "item_size": args.item_size,
        "corpus_nodes": corpus_nodes,
        "edits": args.edits,
        "seed": args.seed,
        "baseline_full_rehash_s": round(baseline_s, 6),
        "edit_mean_s": round(mean_edit_s, 6),
        "edit_p50_s": round(p50, 6),
        "edit_p90_s": round(p90, 6),
        "edit_p99_s": round(p99, 6),
        "speedup_vs_full_rehash": round(speedup, 2),
        "mean_spine_depth": round(mean_depth, 2),
        "mean_nodes_rehashed_per_edit": round(mean_rehashed, 2),
        "rehash_ratio": round(totals["rehash_ratio"], 6),
        "repins": totals["repins"],
        "mismatches": mismatches,
        "speedup_gate": speedup_gate,
        "gates": gates,
    }

    print(
        f"edits: {args.edits}  p50 {p50 * 1e6:.0f}us  p90 {p90 * 1e6:.0f}us  "
        f"p99 {p99 * 1e6:.0f}us  mean {mean_edit_s * 1e6:.0f}us"
    )
    print(
        f"rehashed/edit: {mean_rehashed:.1f} nodes "
        f"(corpus {corpus_nodes}; ratio {totals['rehash_ratio']:.5f})  "
        f"mean spine depth {mean_depth:.1f}"
    )
    print(f"speedup vs full-corpus rehash: {speedup:.1f}x")
    if not enforce_speedup:
        print(f"SKIP speedup_10x gate: {speedup_gate['reason']}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=12)
    parser.add_argument("--item-size", type=int, default=8192)
    parser.add_argument("--edits", type=int, default=200)
    parser.add_argument("--min-depth", type=int, default=12)
    parser.add_argument("--seed", type=int, default=1009)
    parser.add_argument("--baseline-reps", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: tiny corpus, bit-identity enforced, the "
        "speedup floor skipped (annotated) below the full-size bar",
    )
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.items = min(args.items, 4)
        args.item_size = min(args.item_size, 2048)
        args.edits = min(args.edits, 40)
        args.baseline_reps = min(args.baseline_reps, 2)

    result = run(args)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    failed = [name for name, ok in result["gates"].items() if not ok]
    if failed:
        print(f"FAIL: gates failed: {', '.join(failed)}")
        return 1
    print("OK: all gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
