"""Figure 2 (right): hashing time vs size on wildly unbalanced trees.

The separating case: Locally Nameless goes quadratic on deep binder
chains while Ours stays log-linear.  The quadratic baseline is capped
per the scale profile; raise ``REPRO_BENCH_SCALE`` to extend it.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.gen.random_exprs import random_unbalanced

from conftest import run_bench

_PROFILE = current_profile()
_SIZES = tuple(n for n in _PROFILE.fig2_sizes if n >= 256)
_EXPRS = {n: random_unbalanced(n, seed=22 ^ n) for n in _SIZES}


@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_fig2_unbalanced(benchmark, name, size):
    if name == "locally_nameless" and size > _PROFILE.fig2_ln_max_unbalanced:
        pytest.skip("locally nameless capped at this scale profile")
    algorithm = ALGORITHMS[name]
    benchmark.extra_info["family"] = "unbalanced"
    benchmark.extra_info["n"] = size
    heavy = size >= 16384 or (name == 'locally_nameless' and size >= 1024)
    result = run_bench(benchmark, algorithm, _EXPRS[size], heavy=heavy)
    assert result.root_hash is not None
