"""Figure 3: hashing time across BERT layer counts.

Expression size scales linearly with layers; the paper's claim is that
Locally Nameless diverges quadratically with depth while Ours tracks
the incorrect baselines within a small factor.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.workloads.bert import bert_target_nodes, build_bert

from conftest import run_bench

_PROFILE = current_profile()
_LAYERS = _PROFILE.fig3_layers
_EXPRS = {layers: build_bert(layers) for layers in _LAYERS}


@pytest.mark.parametrize("layers", _LAYERS)
@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_fig3_bert(benchmark, name, layers):
    if name == "locally_nameless" and layers > _PROFILE.fig3_ln_max_layers:
        pytest.skip("locally nameless capped at this scale profile")
    algorithm = ALGORITHMS[name]
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["n"] = bert_target_nodes(layers)
    heavy = name == 'locally_nameless' and layers >= 4
    result = run_bench(benchmark, algorithm, _EXPRS[layers], heavy=heavy)
    assert result.root_hash is not None
