"""Cluster smoke gate: coordinator + 2 shard nodes as real processes.

CI entry point for the distributed hash cluster::

    PYTHONPATH=src python benchmarks/cluster_smoke.py --items 600

The gate spawns two ``repro serve --shard-id i --shard-count 2`` nodes
and one ``repro cluster serve`` coordinator on free localhost ports,
then hard-fails unless:

1. the coordinator health folds both shards as up;
2. coordinator hashing is **bit-identical** to ``alpha_hash_all``;
3. interning through the coordinator conserves stats -- folded totals
   equal elementwise per-shard sums, and the merged snapshot union
   holds exactly the classes a flat local :class:`Session` holds;
4. a replica seeded from shard 0's snapshot catches up over
   ``/v1/snapshot/delta`` with a payload **smaller than the full
   snapshot**, landing bit-identical;
5. SIGKILLing shard 1 leaves hashing alive (chunks re-route) while
   interning its keys is a **bounded 503 that names the dead shard**;
6. SIGTERM stops the coordinator and the surviving node with
   **exit code 0** -- no leaked listeners.

Exit code 0 = all gates hold; 1 = any gate failed.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import socket
import subprocess
import sys
import time


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args], env=dict(os.environ)
    )


def build_corpus(n_items: int, seed: int = 42):
    from repro.gen.random_exprs import random_expr

    rng = random.Random(seed)
    corpus = []
    for _ in range(n_items):
        if corpus and rng.random() < 0.25:
            corpus.append(rng.choice(corpus))
        else:
            corpus.append(random_expr(40, rng=rng, p_let=0.2, p_lit=0.2))
    return corpus


def wait_for_health(client, attempts: int, delay: float) -> dict:
    from repro.service import ServiceError

    last = None
    for _ in range(attempts):
        try:
            return client.health()
        except ServiceError as exc:
            last = exc
            time.sleep(delay)
    raise SystemExit(f"server never became healthy: {last}")


def stop_cleanly(name: str, proc, failures: int) -> int:
    """SIGTERM ``proc``; a hang or non-zero exit is a gate failure."""
    if proc.poll() is not None:
        print(
            f"FAIL: {name} died early with exit {proc.returncode}",
            file=sys.stderr,
        )
        return failures + 1
    proc.send_signal(signal.SIGTERM)
    try:
        returncode = proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        print(f"FAIL: {name} still alive 15s after SIGTERM", file=sys.stderr)
        return failures + 1
    if returncode != 0:
        print(
            f"FAIL: {name} exited {returncode} on SIGTERM (want 0)",
            file=sys.stderr,
        )
        return failures + 1
    print(f"cluster_smoke: {name} SIGTERM clean shutdown ok (exit 0)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=600)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--health-attempts", type=int, default=50)
    parser.add_argument("--health-delay", type=float, default=0.2)
    args = parser.parse_args(argv)

    shard_count = 2
    ports = [free_port() for _ in range(shard_count + 1)]
    nodes = [
        spawn(
            [
                "serve",
                "--host", "127.0.0.1",
                "--port", str(ports[i]),
                "--shard-id", str(i),
                "--shard-count", str(shard_count),
            ]
        )
        for i in range(shard_count)
    ]
    shard_urls = [f"http://127.0.0.1:{ports[i]}" for i in range(shard_count)]
    coordinator = spawn(
        [
            "cluster", "serve",
            "--host", "127.0.0.1",
            "--port", str(ports[shard_count]),
            "--retries", "1",
            "--backoff", "0.05",
            "--down-ttl", "30",
            *[arg for url in shard_urls for arg in ("--shard", url)],
        ]
    )
    coordinator_url = f"http://127.0.0.1:{ports[shard_count]}"
    procs = list(zip(["shard 0", "shard 1", "coordinator"],
                     nodes + [coordinator]))
    try:
        return run_gates(args, shard_urls, coordinator_url, nodes, coordinator)
    except BaseException:
        for _name, proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        raise


def run_gates(args, shard_urls, coordinator_url, nodes, coordinator) -> int:
    from repro.api import Session
    from repro.core.hashed import alpha_hash_all
    from repro.service import ServiceClient, ServiceError
    from repro.store import snapshot_from_bytes

    failures = 0

    # Gate 1: every process comes up and the coordinator folds them.
    for url in shard_urls:
        wait_for_health(
            ServiceClient(url, timeout=30.0),
            args.health_attempts, args.health_delay,
        )
    client = ServiceClient(coordinator_url, timeout=300.0, retries=0)
    health = wait_for_health(client, args.health_attempts, args.health_delay)
    if not (health["ok"] and len(health["shards"]) == 2):
        print(f"FAIL: cluster health not ok: {health}", file=sys.stderr)
        failures += 1
    print(f"cluster_smoke: coordinator up, {len(health['shards'])} shards ok")

    corpus = build_corpus(args.items, seed=args.seed)
    reference = [alpha_hash_all(e).root_hash for e in corpus]

    # Gate 2: routed hashing is bit-identical to the local path.
    t0 = time.perf_counter()
    remote = client.hash_corpus(corpus)
    routed_s = time.perf_counter() - t0
    if remote != reference:
        bad = sum(1 for a, b in zip(remote, reference) if a != b)
        print(
            f"FAIL: cluster hashes diverge on {bad}/{len(corpus)} items",
            file=sys.stderr,
        )
        failures += 1
    print(f"cluster_smoke: routed hash bit-identity ok ({routed_s:.2f}s)")

    # Gate 3: interning conserves stats across the fold and the
    # merged snapshot union equals a flat store's class set.
    client.intern_many(corpus)
    stats = client.stats()
    if stats["entries"] != sum(s["entries"] for s in stats["shards"]):
        print("FAIL: folded entries != per-shard sum", file=sys.stderr)
        failures += 1
    for key, total in stats["store"].items():
        per_shard = sum(s["store"].get(key, 0) for s in stats["shards"])
        if total != per_shard:
            print(
                f"FAIL: folded counter {key}={total} != shard sum "
                f"{per_shard}",
                file=sys.stderr,
            )
            failures += 1
    merged, header = snapshot_from_bytes(client.fetch_snapshot())
    with Session() as flat:
        flat.intern_many(corpus)
        flat_hashes = {e.hash for e in flat.store.entries()}
    if {e.hash for e in merged.entries()} != flat_hashes:
        print("FAIL: merged snapshot union != flat store classes",
              file=sys.stderr)
        failures += 1
    print(
        f"cluster_smoke: stats conservation ok ({stats['entries']} entries "
        f"across {stats['shard_count']} shards, union == flat "
        f"{len(flat_hashes)} classes, format {header['format']})"
    )

    # Gate 4: replica catch-up over the delta endpoint, not a full
    # transfer. Shard 0 keeps interning (its own keys) after the
    # replica seeds, so the delta window is non-empty.
    shard0 = ServiceClient(shard_urls[0], timeout=30.0)
    replica = Session.from_snapshot_bytes(shard0.fetch_snapshot())
    try:
        full_before = len(shard0.fetch_snapshot())
        extra = [
            e for e in build_corpus(120, seed=args.seed + 1)
            if alpha_hash_all(e).root_hash % 2 == 0
        ]
        shard0.intern_many(extra)
        delta = shard0.fetch_delta(replica.store.version)
        report = shard0.catch_up(replica)
        if not (report["applied"] > 0 and len(delta) < full_before):
            print(
                f"FAIL: delta catch-up not incremental: {report}, "
                f"delta {len(delta)}B vs full {full_before}B",
                file=sys.stderr,
            )
            failures += 1
        if len(replica.store) != shard0.stats()["entries"]:
            print("FAIL: replica entries != shard entries after catch-up",
                  file=sys.stderr)
            failures += 1
        if replica.hash_corpus(extra) != [
            alpha_hash_all(e).root_hash for e in extra
        ]:
            print("FAIL: caught-up replica diverges", file=sys.stderr)
            failures += 1
        print(
            f"cluster_smoke: replica delta catch-up ok "
            f"(applied {report['applied']}, {len(delta)}B delta vs "
            f"{full_before}B full)"
        )
    finally:
        replica.close()

    # Gate 5: SIGKILL shard 1 -- hashing re-routes, interning its keys
    # is a bounded 503 that names it.
    nodes[1].kill()
    nodes[1].wait(timeout=10)
    probe = corpus[:50]
    if client.hash_corpus(probe) != reference[:50]:
        print("FAIL: hashing diverged after losing shard 1",
              file=sys.stderr)
        failures += 1
    doomed = [e for e, h in zip(corpus, reference) if h % 2 == 1][:5]
    started = time.monotonic()
    try:
        client.intern_many(doomed)
    except ServiceError as exc:
        elapsed = time.monotonic() - started
        if exc.status != 503 or "shard 1" not in str(exc):
            print(f"FAIL: wrong degradation error: {exc}", file=sys.stderr)
            failures += 1
        elif elapsed > 20:
            print(f"FAIL: degradation took {elapsed:.1f}s (> 20s bound)",
                  file=sys.stderr)
            failures += 1
        else:
            print(
                f"cluster_smoke: dead-shard degradation ok "
                f"(503 naming shard 1 in {elapsed:.2f}s, hash re-routed)"
            )
    else:
        print("FAIL: interning dead shard's keys did not 503",
              file=sys.stderr)
        failures += 1

    # Gate 6: SIGTERM stops the coordinator and the surviving node
    # cleanly (exit 0).
    failures = stop_cleanly("coordinator", coordinator, failures)
    failures = stop_cleanly("shard 0", nodes[0], failures)

    if failures:
        print(f"cluster_smoke: {failures} gate(s) FAILED", file=sys.stderr)
        return 1
    print("cluster_smoke: all gates ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
