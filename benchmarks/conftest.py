"""Shared fixtures for the benchmark suite.

Benchmarks honour the ``REPRO_BENCH_SCALE`` profile (ci | small | paper,
see :mod:`repro.evalharness.config`); the default ``ci`` profile keeps
the whole suite in the minutes range.  Expensive (quadratic-baseline)
cells are skipped below the scale that affords them and recorded as
such, mirroring how the harness tables cap the Locally Nameless series.
"""

from __future__ import annotations

import pytest

from repro.evalharness.config import current_profile


@pytest.fixture(scope="session")
def profile():
    return current_profile()


def run_bench(benchmark, fn, *args, heavy: bool = False):
    """Run ``fn(*args)`` under pytest-benchmark with bounded rounds.

    Auto-calibration would run the fast cells hundreds of times and the
    multi-second cells several times each; pedantic mode keeps the whole
    suite proportional to one-or-few passes per cell, which is what the
    paper-shape comparisons need.
    """
    rounds = 1 if heavy else 3
    return benchmark.pedantic(
        fn, args=args, rounds=rounds, iterations=1, warmup_rounds=0 if heavy else 1
    )


def pytest_report_header(config):
    profile = current_profile()
    return f"repro benchmark scale profile: {profile.name} (REPRO_BENCH_SCALE)"
