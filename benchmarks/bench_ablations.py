"""Ablation benchmarks: the cost of disabling each design choice.

Variants (on unbalanced trees, where the asymptotics separate):

* ``ours``          -- the full algorithm;
* ``always_left``   -- no smaller-subtree merge (Section 4.8 off);
* ``recompute_vm``  -- no XOR hash maintenance (Section 5.2 off);
* ``lazy``          -- Appendix C lazy-linear variant (same asymptotics,
  different constants).
"""

from __future__ import annotations

import pytest

from repro.api.backends import ABLATION_ORDER, get_backend
from repro.evalharness.ablations import sweep_label
from repro.evalharness.config import current_profile
from repro.gen.random_exprs import random_unbalanced

from conftest import run_bench

_PROFILE = current_profile()
_CAP = 4096 if _PROFILE.name == "ci" else 16384
_SIZES = tuple(n for n in _PROFILE.fig2_sizes if 256 <= n <= _CAP)
_EXPRS = {n: random_unbalanced(n, seed=51 ^ n) for n in _SIZES}


@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("variant", ABLATION_ORDER)
def test_ablation(benchmark, variant, size):
    backend = get_backend(variant)
    # historical sweep labels, so recorded benchmark series stay comparable
    benchmark.extra_info["variant"] = sweep_label(variant)
    benchmark.extra_info["n"] = size
    heavy = variant in ('always_left', 'recompute_vm') and size >= 4096
    result = run_bench(benchmark, backend.hash_all, _EXPRS[size], heavy=heavy)
    assert result.root_hash is not None
