"""Store benchmark: corpus re-hashing through :class:`ExprStore`.

The store's claim: a corpus whose items repeat and overlap (shared
subtree objects -- what any hash-consing pipeline produces, and what CSE
rounds leave behind after spine-only rewrites) is hashed once per unique
subtree, not once per occurrence.  This harness builds such a corpus
(>= 50% duplicate items by construction) and compares

* **fresh** -- an :func:`alpha_hash_all` pass per corpus item, the
  pre-store behaviour;
* **store (cold)** -- one :meth:`ExprStore.hash_corpus` over the same
  corpus with an empty store;
* **store (warm)** -- the same call again, everything memoised.

Run under pytest-benchmark like the rest of the suite, or standalone as
a CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_store.py --smoke [--workers N]

which fails loudly (exit 1) unless the cold store pass beats the fresh
passes, the cache hit-rate is > 0, and the parallel engine (a) returns
hashes bit-identical to the serial path and (b) -- on machines with
enough CPUs for the question to make sense -- beats the serial path by
the expected margin (>= 1.8x for 4 workers on >= 4 CPUs, >= 1.2x for 2
workers on >= 2 CPUs; on fewer CPUs the run is marked
``"cpu_bound": true``, reported, and skipped -- not failed -- because
no engine can parallelise past the hardware).

``--arena-items N`` adds the arena-kernel gate (the PR-4 acceptance
bar): on an ``N``-item duplicate-free corpus the arena engine must be
bit-identical to the tree path and >= 2x faster, single worker --
unlike the parallel floors this gate has no CPU-count caveat, since
one worker is one worker on any host.  ``--json-out`` appends the
measured cells to a JSON trajectory file (see
``benchmarks/run_bench.py``).
"""

from __future__ import annotations

import os
import random
import tempfile
from typing import Optional

from repro.api import Session
from repro.core.cpus import available_cpus
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Expr
from repro.store import ExprStore, parallel_hash_corpus

#: Fraction of corpus items that repeat or recombine earlier items.
DUP_FRACTION = 0.6

#: The arena gate: the array kernel must beat the tree walk by this
#: factor on the smoke corpus, single worker (PR-4 acceptance bar).
ARENA_SMOKE_FLOOR = 2.0

#: The vec gate: the vectorized kernel must beat the scalar kernel by
#: this factor on the same arena (PR-6 acceptance bar).  Single-threaded
#: by construction, so -- unlike the parallel floors -- it holds on any
#: host shape; it is only skipped when NumPy is not importable.
VEC_SMOKE_FLOOR = 2.0


def make_corpus(
    n_items: int, item_size: int, dup_fraction: float = DUP_FRACTION, seed: int = 42
) -> list[Expr]:
    """A corpus with ``dup_fraction`` duplicate/overlapping items.

    Duplicates reuse earlier items as shared objects -- half verbatim,
    half recombined under a fresh ``App`` so overlap (not just repetition)
    is exercised.  The rest are fresh random expressions in the
    Section 7.1 families.
    """
    rng = random.Random(seed)
    pool: list[Expr] = []
    for _ in range(n_items):
        if pool and rng.random() < dup_fraction:
            if rng.random() < 0.5:
                expr: Expr = rng.choice(pool)
            else:
                expr = App(rng.choice(pool), rng.choice(pool))
        else:
            expr = random_expr(
                item_size,
                rng=rng,
                shape=rng.choice(("balanced", "unbalanced")),
                p_let=0.3,
                p_lit=0.1,
            )
        pool.append(expr)
    return pool


def fresh_hash_corpus(corpus: list[Expr]) -> list[int]:
    """The pre-store behaviour: one full hashing pass per item."""
    return [alpha_hash_all(expr).root_hash for expr in corpus]


# ---------------------------------------------------------------------------
# pytest-benchmark cells
# ---------------------------------------------------------------------------

_N_ITEMS = 60
_ITEM_SIZE = 400


def _bench_corpus() -> list[Expr]:
    return make_corpus(_N_ITEMS, _ITEM_SIZE)


def test_fresh_rehash(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)
    benchmark.pedantic(
        fresh_hash_corpus, args=(corpus,), rounds=3, iterations=1, warmup_rounds=1
    )


def test_store_rehash_cold(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)

    def cold():
        return ExprStore().hash_corpus(corpus, engine="tree")

    benchmark.pedantic(cold, rounds=3, iterations=1, warmup_rounds=1)
    stats = ExprStore()
    stats.hash_corpus(corpus, engine="tree")
    benchmark.extra_info["hit_rate"] = round(stats.stats.hit_rate, 4)


def test_store_rehash_warm(benchmark):
    corpus = _bench_corpus()
    store = ExprStore()
    store.hash_corpus(corpus, engine="tree")
    benchmark.pedantic(
        store.hash_corpus,
        args=(corpus,),
        kwargs={"engine": "tree"},
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_session_rehash_cold(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)

    def cold():
        return Session().hash_corpus(corpus)

    benchmark.pedantic(cold, rounds=3, iterations=1, warmup_rounds=1)


def test_session_snapshot_reload(benchmark):
    """Load-from-snapshot vs re-hashing: the cross-process reuse path."""
    corpus = _bench_corpus()
    session = Session()
    session.intern_many(corpus)
    handle, path = tempfile.mkstemp(suffix=".snap")
    os.close(handle)
    try:
        session.save(path)
        benchmark.extra_info["snapshot_bytes"] = os.path.getsize(path)
        benchmark.pedantic(
            Session.load, args=(path,), rounds=3, iterations=1, warmup_rounds=1
        )
    finally:
        os.unlink(path)


def test_store_matches_fresh():
    corpus = _bench_corpus()
    assert ExprStore().hash_corpus(corpus, engine="tree") == fresh_hash_corpus(corpus)
    assert Session().hash_corpus(corpus) == fresh_hash_corpus(corpus)


def test_parallel_rehash(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)
    benchmark.extra_info["workers"] = 2
    benchmark.pedantic(
        parallel_hash_corpus,
        args=(corpus,),
        kwargs={"workers": 2},
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_parallel_matches_serial():
    corpus = _bench_corpus()
    assert parallel_hash_corpus(corpus, workers=2) == fresh_hash_corpus(corpus)


def test_arena_rehash_cold(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)

    def cold():
        return ExprStore().hash_corpus(corpus, engine="arena")

    benchmark.pedantic(cold, rounds=3, iterations=1, warmup_rounds=1)


def test_arena_matches_tree():
    corpus = _bench_corpus()
    assert ExprStore().hash_corpus(corpus, engine="arena") == fresh_hash_corpus(
        corpus
    )


# ---------------------------------------------------------------------------
# standalone smoke gate (CI)
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def smoke(n_items: int, item_size: int, repeats: int) -> int:
    corpus = make_corpus(n_items, item_size)
    total_nodes = sum(e.size for e in corpus)

    expected = fresh_hash_corpus(corpus)
    if ExprStore().hash_corpus(corpus, engine="tree") != expected:
        print("FAIL: store hashes disagree with fresh AlphaHashes passes")
        return 1

    # engine="tree" throughout: this gate protects the memoised tree
    # path (the PR-1 claim); the arena engine has its own gate below.
    fresh_time = _best_of(lambda: fresh_hash_corpus(corpus), repeats)
    cold_time = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="tree"), repeats
    )
    warm_store = ExprStore()
    warm_store.hash_corpus(corpus, engine="tree")
    warm_time = _best_of(
        lambda: warm_store.hash_corpus(corpus, engine="tree"), repeats
    )

    probe = ExprStore()
    probe.hash_corpus(corpus, engine="tree")
    hit_rate = probe.stats.hit_rate

    print(
        f"corpus: {n_items} items, {total_nodes} nodes "
        f"({DUP_FRACTION:.0%} duplicate/overlapping items)"
    )
    print(
        f"fresh {fresh_time * 1e3:8.1f} ms   "
        f"store cold {cold_time * 1e3:8.1f} ms ({fresh_time / cold_time:.2f}x)   "
        f"store warm {warm_time * 1e3:8.1f} ms"
    )
    print(f"cache hit-rate {hit_rate:.1%}  stats {probe.stats}")

    ok = True
    if not cold_time < fresh_time:
        print("FAIL: cold store pass not faster than fresh passes")
        ok = False
    if not hit_rate > 0:
        print("FAIL: cache hit-rate is zero")
        ok = False

    # Session snapshot round-trip: a corpus hashed once must reload with
    # bit-identical root hashes and a store that already knows every class.
    session = Session()
    roots = session.hash_corpus(corpus)
    session.intern_many(corpus)
    handle, path = tempfile.mkstemp(suffix=".snap")
    os.close(handle)
    try:
        session.save(path)
        loaded = Session.load(path)
        if loaded.store.stats.as_dict() != session.store.stats.as_dict():
            print("FAIL: snapshot did not round-trip the store stats")
            ok = False
        if loaded.hash_corpus(corpus) != roots:
            print("FAIL: snapshot reload changed root hashes")
            ok = False
        elif any(loaded.store.lookup_hash(h) is None for h in roots):
            print("FAIL: reloaded store is missing interned classes")
            ok = False
        else:
            print(
                f"snapshot round-trip ok ({os.path.getsize(path)} bytes, "
                f"{len(loaded.store)} entries)"
            )
    finally:
        if os.path.exists(path):
            os.unlink(path)

    if ok:
        print("OK: store beats fresh re-hashing with a warm cache")
    return 0 if ok else 1


def required_speedup(workers: int, cpus: int) -> Optional[float]:
    """The honest parallel gate for this machine.

    A pool cannot beat the hardware: with ``c`` CPUs the best case for
    ``w`` workers is ``min(w, c)``x minus fork/IPC overhead.  We gate at
    1.8x for 4+ workers on 4+ CPUs (the PR-3 acceptance bar) and 1.2x
    for 2 workers on 2+ CPUs (the CI runner shape); on a single CPU the
    timing is reported but not gated.
    """
    effective = min(workers, cpus)
    if effective >= 4:
        return 1.8
    if effective >= 2:
        return 1.2
    return None


def arena_smoke(n_items: int, item_size: int, repeats: int) -> tuple[int, dict]:
    """Tree walk vs arena kernel: bit-identity always, >= 2x always.

    Single worker on a duplicate-free corpus, so -- unlike the parallel
    floors -- the gate holds on any host shape: the win comes from
    array-indexed memo structure and flatten-time dedup, not from extra
    CPUs.
    """
    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    total_nodes = sum(e.size for e in corpus)

    tree_hashes = ExprStore().hash_corpus(corpus, engine="tree")
    arena_hashes = ExprStore().hash_corpus(corpus, engine="arena")
    tree_time = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="tree"), repeats
    )
    arena_time = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="arena"), repeats
    )
    speedup = tree_time / arena_time if arena_time else float("inf")
    cell = {
        "items": n_items,
        "nodes": total_nodes,
        "tree_s": round(tree_time, 4),
        "arena_s": round(arena_time, 4),
        "speedup": round(speedup, 3),
        "required_speedup": ARENA_SMOKE_FLOOR,
        "identical": arena_hashes == tree_hashes,
    }
    print(f"arena corpus: {n_items} items, {total_nodes} nodes, 1 worker")
    print(
        f"tree {tree_time * 1e3:8.1f} ms   "
        f"arena {arena_time * 1e3:8.1f} ms   ({speedup:.2f}x)"
    )
    if not cell["identical"]:
        print("FAIL: arena kernel hashes diverge from the tree path")
        return 1, cell
    print(f"arena hashes bit-identical to the tree path over {n_items} items")
    if speedup < ARENA_SMOKE_FLOOR:
        print(
            f"FAIL: arena speedup {speedup:.2f}x below the "
            f"{ARENA_SMOKE_FLOOR:.1f}x floor (single worker)"
        )
        return 1, cell
    print(f"OK: arena speedup {speedup:.2f}x >= {ARENA_SMOKE_FLOOR:.1f}x floor")
    return 0, cell


def vec_smoke(n_items: int, item_size: int, repeats: int) -> tuple[int, dict]:
    """Vectorized vs scalar arena kernel: bit-identity always, >= 2x gate.

    Both kernels hash the *same* flattened arena (flatten cost is
    excluded -- the cell times the kernels alone).  Without NumPy the
    cell reports the scalar time and skips the gate honestly.
    """
    from repro.core.arena import HAVE_NUMPY, arena_hash_any, flatten_corpus

    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    total_nodes = sum(e.size for e in corpus)
    arena, _roots = flatten_corpus(corpus)
    scalar_time = _best_of(
        lambda: arena_hash_any(arena, kernel="scalar"), repeats
    )
    cell = {
        "items": n_items,
        "nodes": total_nodes,
        "unique_arena_nodes": len(arena),
        "numpy": HAVE_NUMPY,
        "scalar_s": round(scalar_time, 4),
    }
    print(
        f"vec corpus: {n_items} items, {total_nodes} nodes "
        f"({len(arena)} unique arena nodes)"
    )
    if not HAVE_NUMPY:
        print("SKIP: NumPy not importable -- scalar time reported, not gated")
        return 0, cell
    vec_time = _best_of(lambda: arena_hash_any(arena, kernel="vec"), repeats)
    speedup = scalar_time / vec_time if vec_time else float("inf")
    cell["vec_s"] = round(vec_time, 4)
    cell["speedup"] = round(speedup, 3)
    cell["required_speedup"] = VEC_SMOKE_FLOOR
    cell["identical"] = arena_hash_any(arena, kernel="vec") == arena_hash_any(
        arena, kernel="scalar"
    )
    print(
        f"scalar {scalar_time * 1e3:8.1f} ms   "
        f"vec {vec_time * 1e3:8.1f} ms   ({speedup:.2f}x)"
    )
    if not cell["identical"]:
        print("FAIL: vectorized kernel hashes diverge from the scalar kernel")
        return 1, cell
    print(f"vec hashes bit-identical to the scalar kernel over {n_items} items")
    if speedup < VEC_SMOKE_FLOOR:
        print(
            f"FAIL: vec speedup {speedup:.2f}x below the "
            f"{VEC_SMOKE_FLOOR:.1f}x floor (single worker)"
        )
        return 1, cell
    print(f"OK: vec speedup {speedup:.2f}x >= {VEC_SMOKE_FLOOR:.1f}x floor")
    return 0, cell


def parallel_smoke(
    n_items: int, item_size: int, workers: int, repeats: int
) -> tuple[int, dict]:
    """Serial-vs-parallel corpus cell: returns (exit_code, measurements).

    The corpus is duplicate-free: the engine deduplicates repeats by
    object identity before fanning out, so duplicates would measure the
    dedup dictionary, not the workers.
    """
    cpus = available_cpus()
    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    total_nodes = sum(e.size for e in corpus)

    def parallel_once():
        # A fresh session per timing keeps the store memo cold; closing
        # it releases the session-owned worker pool each round.
        with Session(workers=workers) as session:
            return session.hash_corpus(corpus)

    serial_time = _best_of(lambda: Session().hash_corpus(corpus), repeats)
    serial_hashes = Session().hash_corpus(corpus)

    par_time = _best_of(parallel_once, repeats)
    par_hashes = parallel_once()

    speedup = serial_time / par_time if par_time else float("inf")
    cell = {
        "items": n_items,
        "nodes": total_nodes,
        "workers": workers,
        "cpus": cpus,
        "serial_s": round(serial_time, 4),
        "parallel_s": round(par_time, 4),
        "speedup": round(speedup, 3),
        "identical": par_hashes == serial_hashes,
        # More workers than CPUs: the run measures the hardware ceiling,
        # not the engine -- the gate below skips (never fails) it.
        "cpu_bound": workers > cpus,
    }
    print(
        f"parallel corpus: {n_items} items, {total_nodes} nodes, "
        f"{workers} workers on {cpus} CPU(s)"
    )
    print(
        f"serial {serial_time * 1e3:8.1f} ms   "
        f"parallel {par_time * 1e3:8.1f} ms   ({speedup:.2f}x)"
    )

    if not cell["identical"]:
        print("FAIL: parallel hashes diverge from the serial path")
        return 1, cell
    print(f"parallel hashes bit-identical to serial over {n_items} items")
    # cpu_bound runs are skipped outright -- their speedup measures the
    # hardware ceiling, not the engine -- so the floor only ever gates a
    # run with one CPU per worker.
    floor = None if cell["cpu_bound"] else required_speedup(workers, cpus)
    cell["required_speedup"] = floor
    if cell["cpu_bound"]:
        print(
            f"SKIP: cpu_bound run ({workers} workers on {cpus} CPU(s)) -- "
            "speedup reported, not gated (no engine can parallelise past "
            "the hardware)"
        )
        return 0, cell
    if floor is None:
        print(
            f"note: {workers} worker(s) -- too few for a speedup floor; "
            "reported, not gated"
        )
        return 0, cell
    if speedup < floor:
        print(
            f"FAIL: parallel speedup {speedup:.2f}x below the {floor:.1f}x "
            f"floor for {workers} workers on {cpus} CPUs"
        )
        return 1, cell
    print(f"OK: parallel speedup {speedup:.2f}x >= {floor:.1f}x floor")
    return 0, cell


def main(argv=None) -> int:
    import argparse
    import json
    import platform

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="quick pass/fail perf gate"
    )
    parser.add_argument("--items", type=int, default=60)
    parser.add_argument("--item-size", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="pool size for the parallel corpus cell (0 disables the cell)",
    )
    parser.add_argument(
        "--par-items",
        type=int,
        default=10_000,
        help="corpus items for the parallel cell",
    )
    parser.add_argument(
        "--par-item-size",
        type=int,
        default=60,
        help="nodes per item for the parallel cell",
    )
    parser.add_argument(
        "--arena-items",
        type=int,
        default=0,
        help="corpus items for the arena-kernel gate (0 disables the cell)",
    )
    parser.add_argument(
        "--arena-item-size",
        type=int,
        default=60,
        help="nodes per item for the arena cell",
    )
    parser.add_argument(
        "--vec-items",
        type=int,
        default=0,
        help="corpus items for the vec-kernel gate (0 disables the cell)",
    )
    parser.add_argument(
        "--vec-item-size",
        type=int,
        default=60,
        help="nodes per item for the vec cell",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="write the measured cells as a JSON trajectory record",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for full benchmarks, or pass --smoke")
    status = smoke(args.items, args.item_size, args.repeats)
    record = {
        "schema": "repro-bench-trajectory-v1",
        "bench": "bench_store",
        "python": platform.python_version(),
        "cpus": available_cpus(),
    }
    if args.workers:
        par_status, cell = parallel_smoke(
            args.par_items, args.par_item_size, args.workers, args.repeats
        )
        status = status or par_status
        record["parallel"] = cell
    if args.arena_items:
        arena_status, cell = arena_smoke(
            args.arena_items, args.arena_item_size, args.repeats
        )
        status = status or arena_status
        record["arena"] = cell
    if args.vec_items:
        vec_status, cell = vec_smoke(
            args.vec_items, args.vec_item_size, args.repeats
        )
        status = status or vec_status
        record["vec"] = cell
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote trajectory record to {args.json_out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
