"""Store benchmark: corpus re-hashing through :class:`ExprStore`.

The store's claim: a corpus whose items repeat and overlap (shared
subtree objects -- what any hash-consing pipeline produces, and what CSE
rounds leave behind after spine-only rewrites) is hashed once per unique
subtree, not once per occurrence.  This harness builds such a corpus
(>= 50% duplicate items by construction) and compares

* **fresh** -- an :func:`alpha_hash_all` pass per corpus item, the
  pre-store behaviour;
* **store (cold)** -- one :meth:`ExprStore.hash_corpus` over the same
  corpus with an empty store;
* **store (warm)** -- the same call again, everything memoised.

Run under pytest-benchmark like the rest of the suite, or standalone as
a CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_store.py --smoke

which fails loudly (exit 1) unless the cold store pass beats the fresh
passes and reports a cache hit-rate > 0.
"""

from __future__ import annotations

import os
import random
import tempfile

from repro.api import Session
from repro.core.hashed import alpha_hash_all
from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Expr
from repro.store import ExprStore

#: Fraction of corpus items that repeat or recombine earlier items.
DUP_FRACTION = 0.6


def make_corpus(
    n_items: int, item_size: int, dup_fraction: float = DUP_FRACTION, seed: int = 42
) -> list[Expr]:
    """A corpus with ``dup_fraction`` duplicate/overlapping items.

    Duplicates reuse earlier items as shared objects -- half verbatim,
    half recombined under a fresh ``App`` so overlap (not just repetition)
    is exercised.  The rest are fresh random expressions in the
    Section 7.1 families.
    """
    rng = random.Random(seed)
    pool: list[Expr] = []
    for _ in range(n_items):
        if pool and rng.random() < dup_fraction:
            if rng.random() < 0.5:
                expr: Expr = rng.choice(pool)
            else:
                expr = App(rng.choice(pool), rng.choice(pool))
        else:
            expr = random_expr(
                item_size,
                rng=rng,
                shape=rng.choice(("balanced", "unbalanced")),
                p_let=0.3,
                p_lit=0.1,
            )
        pool.append(expr)
    return pool


def fresh_hash_corpus(corpus: list[Expr]) -> list[int]:
    """The pre-store behaviour: one full hashing pass per item."""
    return [alpha_hash_all(expr).root_hash for expr in corpus]


# ---------------------------------------------------------------------------
# pytest-benchmark cells
# ---------------------------------------------------------------------------

_N_ITEMS = 60
_ITEM_SIZE = 400


def _bench_corpus() -> list[Expr]:
    return make_corpus(_N_ITEMS, _ITEM_SIZE)


def test_fresh_rehash(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)
    benchmark.pedantic(
        fresh_hash_corpus, args=(corpus,), rounds=3, iterations=1, warmup_rounds=1
    )


def test_store_rehash_cold(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)

    def cold():
        return ExprStore().hash_corpus(corpus)

    benchmark.pedantic(cold, rounds=3, iterations=1, warmup_rounds=1)
    stats = ExprStore()
    stats.hash_corpus(corpus)
    benchmark.extra_info["hit_rate"] = round(stats.stats.hit_rate, 4)


def test_store_rehash_warm(benchmark):
    corpus = _bench_corpus()
    store = ExprStore()
    store.hash_corpus(corpus)
    benchmark.pedantic(
        store.hash_corpus, args=(corpus,), rounds=3, iterations=1, warmup_rounds=1
    )


def test_session_rehash_cold(benchmark):
    corpus = _bench_corpus()
    benchmark.extra_info["corpus_nodes"] = sum(e.size for e in corpus)

    def cold():
        return Session().hash_corpus(corpus)

    benchmark.pedantic(cold, rounds=3, iterations=1, warmup_rounds=1)


def test_session_snapshot_reload(benchmark):
    """Load-from-snapshot vs re-hashing: the cross-process reuse path."""
    corpus = _bench_corpus()
    session = Session()
    session.intern_many(corpus)
    handle, path = tempfile.mkstemp(suffix=".snap")
    os.close(handle)
    try:
        session.save(path)
        benchmark.extra_info["snapshot_bytes"] = os.path.getsize(path)
        benchmark.pedantic(
            Session.load, args=(path,), rounds=3, iterations=1, warmup_rounds=1
        )
    finally:
        os.unlink(path)


def test_store_matches_fresh():
    corpus = _bench_corpus()
    assert ExprStore().hash_corpus(corpus) == fresh_hash_corpus(corpus)
    assert Session().hash_corpus(corpus) == fresh_hash_corpus(corpus)


# ---------------------------------------------------------------------------
# standalone smoke gate (CI)
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def smoke(n_items: int, item_size: int, repeats: int) -> int:
    corpus = make_corpus(n_items, item_size)
    total_nodes = sum(e.size for e in corpus)

    expected = fresh_hash_corpus(corpus)
    if ExprStore().hash_corpus(corpus) != expected:
        print("FAIL: store hashes disagree with fresh AlphaHashes passes")
        return 1

    fresh_time = _best_of(lambda: fresh_hash_corpus(corpus), repeats)
    cold_time = _best_of(lambda: ExprStore().hash_corpus(corpus), repeats)
    warm_store = ExprStore()
    warm_store.hash_corpus(corpus)
    warm_time = _best_of(lambda: warm_store.hash_corpus(corpus), repeats)

    probe = ExprStore()
    probe.hash_corpus(corpus)
    hit_rate = probe.stats.hit_rate

    print(
        f"corpus: {n_items} items, {total_nodes} nodes "
        f"({DUP_FRACTION:.0%} duplicate/overlapping items)"
    )
    print(
        f"fresh {fresh_time * 1e3:8.1f} ms   "
        f"store cold {cold_time * 1e3:8.1f} ms ({fresh_time / cold_time:.2f}x)   "
        f"store warm {warm_time * 1e3:8.1f} ms"
    )
    print(f"cache hit-rate {hit_rate:.1%}  stats {probe.stats}")

    ok = True
    if not cold_time < fresh_time:
        print("FAIL: cold store pass not faster than fresh passes")
        ok = False
    if not hit_rate > 0:
        print("FAIL: cache hit-rate is zero")
        ok = False

    # Session snapshot round-trip: a corpus hashed once must reload with
    # bit-identical root hashes and a store that already knows every class.
    session = Session()
    roots = session.hash_corpus(corpus)
    session.intern_many(corpus)
    handle, path = tempfile.mkstemp(suffix=".snap")
    os.close(handle)
    try:
        session.save(path)
        loaded = Session.load(path)
        if loaded.store.stats.as_dict() != session.store.stats.as_dict():
            print("FAIL: snapshot did not round-trip the store stats")
            ok = False
        if loaded.hash_corpus(corpus) != roots:
            print("FAIL: snapshot reload changed root hashes")
            ok = False
        elif any(loaded.store.lookup_hash(h) is None for h in roots):
            print("FAIL: reloaded store is missing interned classes")
            ok = False
        else:
            print(
                f"snapshot round-trip ok ({os.path.getsize(path)} bytes, "
                f"{len(loaded.store)} entries)"
            )
    finally:
        if os.path.exists(path):
            os.unlink(path)

    if ok:
        print("OK: store beats fresh re-hashing with a warm cache")
    return 0 if ok else 1


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="quick pass/fail perf gate"
    )
    parser.add_argument("--items", type=int, default=60)
    parser.add_argument("--item-size", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for full benchmarks, or pass --smoke")
    return smoke(args.items, args.item_size, args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
