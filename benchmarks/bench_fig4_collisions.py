"""Figure 4 / Appendix B: collision-rate experiment cells.

Each benchmark measures one (family, size) cell of the collision sweep
and attaches the observed collision count, the perfect-hash floor and
the Theorem 6.7 bound as metadata.  The benchmark clock here measures
throughput of the experiment engine; the *result* of the experiment is
in ``extra_info`` (and in ``python -m repro fig4``'s table).

The appendix's full 10*2^16 trials per cell is ``REPRO_BENCH_SCALE=paper``;
default profiles use fewer trials at a smaller width, preserving the
qualitative ordering random ~= floor << adversarial < bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.collisions import (
    collision_experiment,
    perfect_hash_expectation,
    theorem_bound,
)
from repro.evalharness.config import current_profile

_PROFILE = current_profile()


@pytest.mark.parametrize("size", _PROFILE.fig4_sizes)
@pytest.mark.parametrize("family", ("random", "adversarial"))
def test_fig4_collisions(benchmark, family, size):
    trials = max(30, _PROFILE.fig4_trials // 10)  # keep each round short
    bits = _PROFILE.fig4_bits

    def run():
        return collision_experiment(family, size, trials, bits=bits, seed=97)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["collisions_per_2_16"] = result.per_2_16
    benchmark.extra_info["perfect_floor"] = perfect_hash_expectation(bits)
    benchmark.extra_info["theorem_bound"] = theorem_bound(size, bits)
    benchmark.extra_info["trials"] = trials
    # The bound must hold with slack even at these trial counts.
    assert result.per_2_16 <= theorem_bound(size, bits)
