"""Unified benchmark runner: one command, one trajectory file.

Runs the store and corpus cells and writes a ``BENCH_PR6.json``
trajectory record -- corpus sizes, wall-clock times, cache hit rates,
worker counts, shard balance -- so the perf history of the repo is a
sequence of committed, machine-readable records instead of numbers in
PR descriptions::

    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_PR6.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick   # CI-sized

Cells:

* ``store``    -- fresh re-hash vs cold vs warm :class:`ExprStore` on a
                  duplicate-heavy corpus (the PR-1 claim, re-measured).
* ``arena``    -- the tree walk vs the arena kernel
                  (:mod:`repro.core.arena`) on the 600k-node corpus the
                  PR-3 parallel cell measured, single worker: compile +
                  kernel wall-clock, bit-identity, dedup ratio.
* ``vec``      -- the vectorized vs the scalar arena kernel on the same
                  flattened arena (flatten cost excluded: this cell
                  times the kernels alone), bit-identity checked; the
                  smoke gate (``bench_store.py --smoke``) asserts >= 2x
                  when NumPy is importable.
* ``parallel`` -- ``hash_corpus`` wall-clock for each worker count on a
                  duplicate-free corpus, with bit-identity checked
                  against the serial path.  Runs asking for more
                  workers than the host has CPUs are marked
                  ``"cpu_bound": true`` -- their speedup measures the
                  hardware, not the engine, and the smoke gate skips
                  them (the PR-3 trajectory's 0.9x-at-4-workers cell
                  was exactly such a 1-CPU artefact).
* ``sharded``  -- flat vs lock-striped sharded interning of one corpus:
                  wall-clock, shard occupancy balance, and the
                  hits+misses conservation invariant.
* ``cluster``  -- coordinator-routing overhead: the same corpus hashed
                  against one directly-addressed ``repro serve`` node
                  vs through a ``repro cluster serve`` coordinator
                  fronting two shard nodes (all on localhost), with
                  bit-identity and folded-stats conservation checked.

``--cells`` picks a subset (default: all); ``--pr`` stamps the record
and the default output name (``BENCH_PR<n>.json``).

Speedups are *reported* for every shape and *gated* nowhere -- gating
lives in ``bench_store.py --smoke`` (CI), which knows how many CPUs it
stands on.  The record always includes the host shape so a trajectory
file from a 1-CPU container is never misread as a regression against a
16-core workstation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_store import make_corpus  # noqa: E402  (sibling module)

from repro.api import Session  # noqa: E402
from repro.core.cpus import available_cpus  # noqa: E402
from repro.core.hashed import alpha_hash_all  # noqa: E402
from repro.store import ExprStore, ShardedExprStore  # noqa: E402


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _shm_segments() -> set:
    """POSIX shared-memory segments visible right now (empty off-Linux)."""
    import glob

    return set(glob.glob("/dev/shm/psm_*"))


def store_cell(n_items: int, item_size: int, repeats: int) -> dict:
    corpus = make_corpus(n_items, item_size)
    nodes = sum(e.size for e in corpus)
    # engine="tree" throughout: the store cell tracks the memoised
    # tree path (the PR-1 claim); the arena cell owns the array kernel.
    fresh = _best_of(
        lambda: [alpha_hash_all(e).root_hash for e in corpus], repeats
    )
    cold = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="tree"), repeats
    )
    warm_store = ExprStore()
    warm_store.hash_corpus(corpus, engine="tree")
    warm = _best_of(
        lambda: warm_store.hash_corpus(corpus, engine="tree"), repeats
    )
    probe = ExprStore()
    probe.hash_corpus(corpus, engine="tree")
    return {
        "items": n_items,
        "nodes": nodes,
        "fresh_s": round(fresh, 4),
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "cold_speedup": round(fresh / cold, 3) if cold else None,
        "hit_rate": round(probe.stats.hit_rate, 4),
    }


def arena_cell(n_items: int, item_size: int, repeats: int) -> dict:
    """Tree walk vs arena kernel, single worker, bit-identity checked.

    The corpus is the duplicate-free one the PR-3 parallel cell
    measured, so the arena's dedup ratio reflects structural repetition
    in the expressions themselves, not object-identity repeats.
    """
    from repro.core.arena import flatten_corpus

    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    nodes = sum(e.size for e in corpus)
    tree_hashes = ExprStore().hash_corpus(corpus, engine="tree")
    arena_hashes = ExprStore().hash_corpus(corpus, engine="arena")
    tree_s = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="tree"), repeats
    )
    arena_s = _best_of(
        lambda: ExprStore().hash_corpus(corpus, engine="arena"), repeats
    )
    arena, _roots = flatten_corpus(corpus)
    return {
        "items": n_items,
        "nodes": nodes,
        "unique_arena_nodes": len(arena),
        "dedup_ratio": round(len(arena) / nodes, 4) if nodes else None,
        "tree_s": round(tree_s, 4),
        "arena_s": round(arena_s, 4),
        "arena_speedup": round(tree_s / arena_s, 3) if arena_s else None,
        "identical": arena_hashes == tree_hashes,
    }


def vec_cell(n_items: int, item_size: int, repeats: int) -> dict:
    """Vectorized vs scalar arena kernel, same arena, flatten excluded.

    The level-batched NumPy kernel and the Python scalar loop hash the
    *same* :class:`ExprArena`, so the ratio is a pure kernel speedup --
    single-threaded, hence meaningful on any host shape (no
    ``cpu_bound`` caveat applies).  Without NumPy only the scalar side
    runs and the record says so (``"numpy": false``).
    """
    from repro.core.arena import HAVE_NUMPY, arena_hash_any, flatten_corpus

    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    nodes = sum(e.size for e in corpus)
    arena, _roots = flatten_corpus(corpus)
    scalar_s = _best_of(lambda: arena_hash_any(arena, kernel="scalar"), repeats)
    cell = {
        "items": n_items,
        "nodes": nodes,
        "unique_arena_nodes": len(arena),
        "numpy": HAVE_NUMPY,
        "scalar_s": round(scalar_s, 4),
    }
    if HAVE_NUMPY:
        vec_s = _best_of(lambda: arena_hash_any(arena, kernel="vec"), repeats)
        cell["vec_s"] = round(vec_s, 4)
        cell["vec_speedup"] = round(scalar_s / vec_s, 3) if vec_s else None
        cell["identical"] = arena_hash_any(arena, kernel="vec") == arena_hash_any(
            arena, kernel="scalar"
        )
    return cell


def parallel_cell(
    n_items: int, item_size: int, workers_list: list[int], repeats: int
) -> dict:
    corpus = make_corpus(n_items, item_size, dup_fraction=0.0, seed=99)
    nodes = sum(e.size for e in corpus)
    cpus = available_cpus()
    serial_hashes = Session().hash_corpus(corpus)
    runs = []
    serial_s = None
    for workers in workers_list:

        def one_pass(workers=workers):
            # A fresh session per timing keeps the store memo cold --
            # the cell measures the engine, not cache warmth -- and
            # closing it releases the session-owned worker pool.
            with Session(workers=workers) as session:
                return session.hash_corpus(corpus)

        elapsed = _best_of(one_pass, repeats)
        identical = one_pass() == serial_hashes
        if workers == 1:
            serial_s = elapsed
        runs.append(
            {
                "workers": workers,
                "wall_s": round(elapsed, 4),
                "identical": identical,
                "speedup_vs_serial": (
                    round(serial_s / elapsed, 3) if serial_s else None
                ),
                # More workers than CPUs: the speedup floor measures the
                # hardware, not the engine -- consumers (the smoke gate,
                # trajectory readers) must skip, not fail, these runs.
                "cpu_bound": workers > cpus,
            }
        )
    return {"items": n_items, "nodes": nodes, "cpus": cpus, "runs": runs}


def sharded_cell(
    n_items: int, item_size: int, num_shards: int, repeats: int
) -> dict:
    corpus = make_corpus(n_items, item_size, seed=7)
    nodes = sum(e.size for e in corpus)
    flat_s = _best_of(lambda: ExprStore().intern_many(corpus), repeats)
    sharded_s = _best_of(
        lambda: ShardedExprStore(num_shards=num_shards).intern_many(corpus),
        repeats,
    )
    probe = ShardedExprStore(num_shards=num_shards)
    probe.intern_many(corpus)
    per_shard = probe.shard_stats()
    sizes = probe.shard_sizes()
    balance = (max(sizes) / (sum(sizes) / len(sizes))) if sum(sizes) else 1.0
    return {
        "items": n_items,
        "nodes": nodes,
        "num_shards": num_shards,
        "flat_intern_s": round(flat_s, 4),
        "sharded_intern_s": round(sharded_s, 4),
        "striping_overhead": (
            round(sharded_s / flat_s, 3) if flat_s else None
        ),
        "entries": len(probe),
        "shard_sizes": sizes,
        "max_over_mean_occupancy": round(balance, 3),
        "stats_conserved": (
            sum(s.hits for s in per_shard) == probe.stats.hits
            and sum(s.misses for s in per_shard) == probe.stats.misses
        ),
    }


def cluster_cell(n_items: int, item_size: int, repeats: int) -> dict:
    """Coordinator-routing overhead vs a directly-addressed node.

    Everything runs on localhost in this process (threaded HTTP
    servers), so the ratio isolates what the coordinator *adds*: one
    extra hop, the chunk fan-out/reassembly, and the two-phase intern's
    hash-then-route.  Bit-identity and stats conservation are gates,
    not just observations.
    """
    from repro.cluster import ClusterCoordinator
    from repro.service import ReproServer, ServiceClient

    corpus = make_corpus(n_items, item_size, seed=7)
    nodes = sum(e.size for e in corpus)
    direct = ReproServer(port=0).start()
    shard0 = ReproServer(port=0, shard_id=0, shard_count=2).start()
    shard1 = ReproServer(port=0, shard_id=1, shard_count=2).start()
    coordinator = ClusterCoordinator(
        [shard0.url, shard1.url], port=0
    ).start()
    try:
        direct_client = ServiceClient(direct.url, timeout=300.0)
        cluster_client = ServiceClient(coordinator.url, timeout=300.0)
        reference = direct_client.hash_corpus(corpus)
        routed = cluster_client.hash_corpus(corpus)
        direct_s = _best_of(
            lambda: direct_client.hash_corpus(corpus), repeats
        )
        routed_s = _best_of(
            lambda: cluster_client.hash_corpus(corpus), repeats
        )
        intern_s = _best_of(
            lambda: cluster_client.intern_many(corpus), repeats
        )
        stats = cluster_client.stats()
        conserved = stats["entries"] == sum(
            shard["entries"] for shard in stats["shards"]
        ) and all(
            total == sum(s["store"].get(key, 0) for s in stats["shards"])
            for key, total in stats["store"].items()
        )
        return {
            "items": n_items,
            "nodes": nodes,
            "shard_count": 2,
            "direct_hash_s": round(direct_s, 4),
            "cluster_hash_s": round(routed_s, 4),
            "routing_overhead": (
                round(routed_s / direct_s, 3) if direct_s else None
            ),
            "cluster_intern_s": round(intern_s, 4),
            "identical": routed == reference,
            "entries": stats["entries"],
            "shard_entries": [s["entries"] for s in stats["shards"]],
            "stats_conserved": conserved,
        }
    finally:
        coordinator.close()
        for server in (direct, shard0, shard1):
            server.close()


ALL_CELLS = ("store", "arena", "vec", "parallel", "sharded", "cluster")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="trajectory file to write (default BENCH_PR<n>.json)",
    )
    parser.add_argument(
        "--pr", type=int, default=7, help="PR number stamped on the record"
    )
    parser.add_argument(
        "--cells",
        nargs="*",
        choices=ALL_CELLS,
        default=None,
        help="cells to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized corpora (seconds)"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="worker counts for the parallel cell (default: 1 2 4)",
    )
    args = parser.parse_args(argv)
    out_path = args.out or f"BENCH_PR{args.pr}.json"
    cells = tuple(args.cells) if args.cells else ALL_CELLS

    if args.quick:
        store_shape = (40, 200)
        par_shape = (1500, 60)
        shard_shape = (300, 120)
        cluster_shape = (300, 60)
    else:
        store_shape = (60, 400)
        par_shape = (10_000, 60)
        shard_shape = (1_000, 120)
        cluster_shape = (1_000, 60)
    arena_shape = par_shape  # arena vs recursive on the parallel corpus
    workers_list = args.workers or [1, 2, 4]

    record = {
        "schema": "repro-bench-trajectory-v1",
        "pr": args.pr,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": available_cpus(),
        },
        "cells": {},
    }
    # Shared-memory hygiene: the parallel cells below fan arenas out
    # through /dev/shm segments; any segment still alive at the end is
    # a leak and fails the run.
    shm_before = _shm_segments()

    if "store" in cells:
        print(
            f"store cell ({store_shape[0]} items x {store_shape[1]} nodes)..."
        )
        record["cells"]["store"] = store_cell(*store_shape, args.repeats)
        print(f"  {json.dumps(record['cells']['store'])}")

    if "arena" in cells:
        print(
            f"arena cell ({arena_shape[0]} items x {arena_shape[1]} nodes)..."
        )
        record["cells"]["arena"] = arena_cell(*arena_shape, args.repeats)
        print(f"  {json.dumps(record['cells']['arena'])}")

    if "vec" in cells:
        print(f"vec cell ({arena_shape[0]} items x {arena_shape[1]} nodes)...")
        record["cells"]["vec"] = vec_cell(*arena_shape, args.repeats)
        print(f"  {json.dumps(record['cells']['vec'])}")

    if "parallel" in cells:
        print(
            f"parallel cell ({par_shape[0]} items x {par_shape[1]} nodes, "
            f"workers {workers_list})..."
        )
        record["cells"]["parallel"] = parallel_cell(
            *par_shape, workers_list, args.repeats
        )
        for run in record["cells"]["parallel"]["runs"]:
            print(f"  {json.dumps(run)}")

    if "sharded" in cells:
        print(
            f"sharded cell ({shard_shape[0]} items x {shard_shape[1]} nodes)..."
        )
        record["cells"]["sharded"] = sharded_cell(
            *shard_shape, 8, args.repeats
        )
        print(f"  {json.dumps(record['cells']['sharded'])}")

    if "cluster" in cells:
        print(
            f"cluster cell ({cluster_shape[0]} items x "
            f"{cluster_shape[1]} nodes, 2 shard nodes)..."
        )
        record["cells"]["cluster"] = cluster_cell(
            *cluster_shape, args.repeats
        )
        print(f"  {json.dumps(record['cells']['cluster'])}")

    leaked = sorted(_shm_segments() - shm_before)
    record["leaked_shm_segments"] = len(leaked)

    divergent = [
        run
        for run in record["cells"].get("parallel", {}).get("runs", [])
        if not run["identical"]
    ]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    if divergent:
        print(f"FAIL: {len(divergent)} parallel run(s) diverged from serial")
        return 1
    if not record["cells"].get("arena", {"identical": True})["identical"]:
        print("FAIL: arena kernel hashes diverged from the tree path")
        return 1
    if not record["cells"].get("vec", {}).get("identical", True):
        print("FAIL: vectorized kernel hashes diverged from the scalar kernel")
        return 1
    if not record["cells"].get("sharded", {"stats_conserved": True})[
        "stats_conserved"
    ]:
        print("FAIL: sharded stats not conserved across shards")
        return 1
    cluster_record = record["cells"].get("cluster")
    if cluster_record is not None:
        if not cluster_record["identical"]:
            print("FAIL: cluster-routed hashes diverged from the direct node")
            return 1
        if not cluster_record["stats_conserved"]:
            print("FAIL: folded cluster stats not conserved across shards")
            return 1
    if leaked:
        print(f"FAIL: {len(leaked)} leaked shared-memory segment(s): {leaked}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
